//! Named instruments: sharded counters, gauges, log₂ histograms.
//!
//! A [`MetricsRegistry`] hands out cheap `Arc`-backed handles, resolved
//! once at construction time so the hot path never touches the registry
//! map: incrementing a [`Counter`] is one relaxed atomic add on a
//! cache-padded shard, recording into a [`Histogram`] one atomic add on a
//! fixed bucket. [`MetricsRegistry::snapshot`] folds every instrument into
//! a [`MetricsSnapshot`] — plain sorted maps that merge across registries
//! and render to deterministic JSON.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Counter shards: enough to keep a handful of worker threads off each
/// other's cache lines without bloating snapshots.
const SHARDS: usize = 8;

/// A cache-line-padded atomic cell, so two shards never share a line.
#[derive(Default)]
#[repr(align(64))]
struct PaddedCell(AtomicU64);

/// Round-robin shard assignment per thread: the first time a thread
/// touches any sharded instrument it claims the next index, and keeps it
/// for every instrument thereafter.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static INDEX: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    INDEX.with(|i| *i)
}

/// A monotonic counter, sharded across cache-padded cells.
///
/// Handles are `Arc`s: clone freely, store them in hot structs, and let
/// every clone feed the same instrument.
#[derive(Clone, Default)]
pub struct Counter {
    shards: Arc<[PaddedCell; SHARDS]>,
}

impl Counter {
    /// A counter not attached to any registry (useful in tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current total (a sum over shards; exact once writers quiesce).
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    fn reset(&self) {
        for c in self.shards.iter() {
            c.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A gauge: a settable value plus its observed high-water mark. `add` /
/// `sub` wrap a single atomic, so concurrent adjustments never lose
/// updates; `set_max` is the peak-tracking flavour
/// (`peak_concurrent_engagements`, `max_queue_depth`).
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Arc<GaugeCell>,
}

#[derive(Default)]
struct GaugeCell {
    value: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    /// A gauge not attached to any registry (useful in tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value (and raises the high-water mark if exceeded).
    pub fn set(&self, v: u64) {
        self.cell.value.store(v, Ordering::Relaxed);
        self.cell.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds `n`, returning the new value (and raises the high-water mark).
    pub fn add(&self, n: u64) -> u64 {
        let v = self.cell.value.fetch_add(n, Ordering::Relaxed) + n;
        self.cell.max.fetch_max(v, Ordering::Relaxed);
        v
    }

    /// Subtracts `n` (saturating at zero under quiesced writers).
    pub fn sub(&self, n: u64) -> u64 {
        self.cell.value.fetch_sub(n, Ordering::Relaxed).wrapping_sub(n)
    }

    /// Raises the high-water mark to at least `v` without moving the value.
    pub fn observe_peak(&self, v: u64) {
        self.cell.max.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.value.load(Ordering::Relaxed)
    }

    /// The high-water mark.
    pub fn max(&self) -> u64 {
        self.cell.max.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.cell.value.store(0, Ordering::Relaxed);
        self.cell.max.store(0, Ordering::Relaxed);
    }
}

/// Histogram buckets: bucket `i` counts values whose bit width is `i`,
/// i.e. bucket 0 holds the value 0 and bucket `i ≥ 1` holds
/// `[2^(i-1), 2^i)` — 65 buckets cover all of `u64`.
const BUCKETS: usize = 65;

/// A fixed log₂-bucket histogram. Recording is one atomic increment plus
/// one atomic add (for the exact total), allocation-free; percentiles are
/// computed from the bucket counts at snapshot time with power-of-two
/// resolution (each reported percentile is its bucket's inclusive upper
/// bound — a deterministic, conservative estimate).
#[derive(Clone)]
pub struct Histogram {
    cells: Arc<HistCells>,
}

struct HistCells {
    buckets: [AtomicU64; BUCKETS],
    /// Exact sum of recorded values (wrapping), so snapshots can quote a
    /// true mean next to the bucketed percentiles.
    total: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            cells: Arc::new(HistCells {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                total: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// A histogram not attached to any registry (useful for one-off
    /// measurements like a fleet point's per-decision latencies).
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value lands in (its bit width).
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.cells.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.cells.total.fetch_add(v, Ordering::Relaxed);
    }

    /// Snapshots the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.cells.buckets[i].load(Ordering::Relaxed)),
            total: self.cells.total.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for b in &self.cells.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.cells.total.store(0, Ordering::Relaxed);
    }
}

/// A gauge's snapshot: its value and high-water mark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// The value at snapshot time.
    pub value: u64,
    /// The high-water mark observed so far.
    pub max: u64,
}

/// A histogram's snapshot: per-bucket counts plus the exact value total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Count per log₂ bucket (see [`Histogram`] for the bucket bounds).
    pub buckets: [u64; BUCKETS],
    /// Exact (wrapping) sum of every recorded value.
    pub total: u64,
}

impl HistogramSnapshot {
    /// Total values recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total as f64 / n as f64
        }
    }

    /// Nearest-rank percentile (`p` in `[0, 1]`), reported as the
    /// inclusive upper bound of the bucket the rank falls in (bucket 0 →
    /// 0, bucket `i` → `2^i - 1`). Zero when empty.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "percentile must be within [0, 1]");
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((p * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { (1u64 << (i - 1)).wrapping_mul(2).wrapping_sub(1) };
            }
        }
        u64::MAX
    }

    /// Adds another snapshot's counts into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.total = self.total.wrapping_add(other.total);
    }
}

/// The three instrument kinds a registry can hold under one name.
#[derive(Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A registry of named instruments. Handles are resolved once (at
/// subsystem construction) and cached by the caller; the registry map is
/// only locked at registration and snapshot time, never per increment.
#[derive(Default)]
pub struct MetricsRegistry {
    instruments: Mutex<BTreeMap<&'static str, Instrument>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name` (registered on first use).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &'static str) -> Counter {
        let mut map = self.instruments.lock().unwrap_or_else(|e| e.into_inner());
        match map.entry(name).or_insert_with(|| Instrument::Counter(Counter::new())) {
            Instrument::Counter(c) => c.clone(),
            _ => panic!("instrument {name} is not a counter"),
        }
    }

    /// The gauge registered under `name` (registered on first use).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        let mut map = self.instruments.lock().unwrap_or_else(|e| e.into_inner());
        match map.entry(name).or_insert_with(|| Instrument::Gauge(Gauge::new())) {
            Instrument::Gauge(g) => g.clone(),
            _ => panic!("instrument {name} is not a gauge"),
        }
    }

    /// The histogram registered under `name` (registered on first use).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        let mut map = self.instruments.lock().unwrap_or_else(|e| e.into_inner());
        match map.entry(name).or_insert_with(|| Instrument::Histogram(Histogram::new())) {
            Instrument::Histogram(h) => h.clone(),
            _ => panic!("instrument {name} is not a histogram"),
        }
    }

    /// Snapshots every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.instruments.lock().unwrap_or_else(|e| e.into_inner());
        let mut snap = MetricsSnapshot::default();
        for (&name, inst) in map.iter() {
            match inst {
                Instrument::Counter(c) => {
                    snap.counters.insert(name.to_string(), c.get());
                }
                Instrument::Gauge(g) => {
                    snap.gauges
                        .insert(name.to_string(), GaugeSnapshot { value: g.get(), max: g.max() });
                }
                Instrument::Histogram(h) => {
                    snap.histograms.insert(name.to_string(), h.snapshot());
                }
            }
        }
        snap
    }

    /// Zeroes every instrument (handles stay valid).
    pub fn reset(&self) {
        let map = self.instruments.lock().unwrap_or_else(|e| e.into_inner());
        for inst in map.values() {
            match inst {
                Instrument::Counter(c) => c.reset(),
                Instrument::Gauge(g) => g.reset(),
                Instrument::Histogram(h) => h.reset(),
            }
        }
    }
}

/// A point-in-time copy of a registry's instruments: plain sorted maps,
/// mergeable across registries, renderable to deterministic JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values and high-water marks by name.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Histogram bucket counts by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Folds another snapshot into this one: counters and histogram
    /// buckets add, gauges take the later value and the max of the marks.
    /// Subsystems with disjoint name prefixes merge losslessly.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, &v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, g) in &other.gauges {
            let e = self.gauges.entry(name.clone()).or_default();
            e.value = g.value;
            e.max = e.max.max(g.max);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Renders the snapshot as deterministic JSON: keys in sorted order,
    /// integers only, histograms quoted as count/mean/percentiles plus the
    /// sparse non-zero buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_map(&mut out, self.counters.iter().map(|(k, v)| (k.as_str(), v.to_string())));
        out.push_str("},\n  \"gauges\": {");
        push_map(
            &mut out,
            self.gauges.iter().map(|(k, g)| {
                (k.as_str(), format!("{{\"value\": {}, \"max\": {}}}", g.value, g.max))
            }),
        );
        out.push_str("},\n  \"histograms\": {");
        push_map(
            &mut out,
            self.histograms.iter().map(|(k, h)| {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| format!("[{i}, {c}]"))
                    .collect();
                (
                    k.as_str(),
                    format!(
                        "{{\"count\": {}, \"mean\": {:.3}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [{}]}}",
                        h.count(),
                        h.mean(),
                        h.percentile(0.50),
                        h.percentile(0.90),
                        h.percentile(0.99),
                        buckets.join(", ")
                    ),
                )
            }),
        );
        out.push_str("}\n}\n");
        out
    }
}

/// Renders `"key": value` pairs (values pre-rendered) into `out`.
fn push_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a str, String)>) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{k}\": {v}"));
    }
    if !first {
        out.push_str("\n  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("t.requests");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(reg.snapshot().counters["t.requests"], 4000);
    }

    #[test]
    fn registry_returns_the_same_instrument_per_name() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(3);
        reg.counter("a").add(4);
        assert_eq!(reg.counter("a").get(), 7);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn registry_rejects_kind_mismatch() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn gauge_tracks_value_and_peak() {
        let g = Gauge::new();
        g.add(5);
        g.add(7);
        g.sub(4);
        assert_eq!(g.get(), 8);
        assert_eq!(g.max(), 12);
        g.set(1);
        assert_eq!((g.get(), g.max()), (1, 12));
    }

    #[test]
    fn histogram_buckets_by_bit_width() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 7);
        assert_eq!(s.buckets[0], 1, "zero lands in bucket 0");
        assert_eq!(s.buckets[1], 1, "1 lands in bucket 1");
        assert_eq!(s.buckets[2], 2, "2 and 3 land in bucket 2");
        assert_eq!(s.buckets[3], 1);
        assert_eq!(s.buckets[10], 1, "1000 lands in [512, 1024)");
        assert_eq!(s.buckets[64], 1);
    }

    #[test]
    fn percentiles_are_bucket_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(3); // bucket 2, upper bound 3
        }
        h.record(1 << 20); // bucket 21
        let s = h.snapshot();
        assert_eq!(s.percentile(0.5), 3);
        assert_eq!(s.percentile(0.99), 3);
        assert_eq!(s.percentile(1.0), (1 << 21) - 1);
        assert_eq!(HistogramSnapshot { buckets: [0; BUCKETS], total: 0 }.percentile(0.9), 0);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_buckets() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("io.requests").add(2);
        b.counter("io.requests").add(3);
        b.counter("serving.engagements").add(1);
        a.histogram("io.service_us").record(7);
        b.histogram("io.service_us").record(9);
        a.gauge("io.depth").set(4);
        b.gauge("io.depth").set(2);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counters["io.requests"], 5);
        assert_eq!(snap.counters["serving.engagements"], 1);
        assert_eq!(snap.histograms["io.service_us"].count(), 2);
        assert_eq!(snap.gauges["io.depth"], GaugeSnapshot { value: 2, max: 4 });
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("b.second").add(2);
        reg.counter("a.first").add(1);
        reg.histogram("c.lat_us").record(100);
        let j1 = reg.snapshot().to_json();
        let j2 = reg.snapshot().to_json();
        assert_eq!(j1, j2);
        assert!(j1.find("a.first").unwrap() < j1.find("b.second").unwrap());
        assert!(j1.contains("\"count\": 1"));
    }

    #[test]
    fn reset_zeroes_but_keeps_handles_live() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x.count");
        c.add(9);
        reg.reset();
        assert_eq!(c.get(), 0);
        c.add(2);
        assert_eq!(reg.snapshot().counters["x.count"], 2);
    }
}
