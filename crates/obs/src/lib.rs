//! # sti-obs: deterministic virtual-clock observability
//!
//! An observability layer clocked on **simulated** time, so traces are a
//! pure function of the replay — bit-identical across `--exec
//! threaded|event` and across runs — never of host scheduling. Three
//! pillars:
//!
//! 1. **Metrics** ([`MetricsRegistry`]): monotonic [`Counter`]s (sharded
//!    across cache-padded cells so the hot path is contention-free),
//!    [`Gauge`]s (set/add/sub plus a high-water mark), and fixed
//!    log₂-bucket [`Histogram`]s (65 buckets covering the full `u64`
//!    range; recording is one atomic increment, no allocation). Snapshots
//!    ([`MetricsSnapshot`]) render to deterministic JSON and merge across
//!    registries, so a server can fold its scheduler's registry into one
//!    report.
//! 2. **Spans** ([`SpanEvent`]): intervals and instants keyed
//!    `(track, name, tick)` where the tick is a simulated-time µs value.
//!    The live backend is a byte-bounded overwrite-oldest ring
//!    ([`SpanRing`]) behind an [`ObsSink`]; the disabled mode
//!    ([`ObsSink::Null`]) is a branch on an enum variant — no allocation,
//!    no atomics, nothing to configure away.
//! 3. **Export** ([`chrome_trace_json`]): Chrome-trace/Perfetto JSON.
//!    Events are canonically sorted by *value* (track, time, name, args)
//!    before rendering, so the byte output is independent of the host
//!    order in which threads emitted them.
//!
//! ## The determinism contract
//!
//! Observability never perturbs simulated results: instruments record,
//! they never decide. Span ticks must come from the simulated clock
//! (`SimTime`-derived µs), never `Instant::now()`. Two span streams whose
//! *multisets* of events agree export byte-identically regardless of
//! emission order; streams fed host-scheduling-dependent data (executor
//! internals, wall-clock durations) belong on [`TrackKind::Host`] or
//! [`TrackKind::Engine`] tracks, which deterministic exports exclude (see
//! [`TrackKind::deterministic`]).
//!
//! ## Instrument naming scheme
//!
//! Dotted lowercase paths, `snake_case` leaves, unit-suffixed where the
//! value has one: `io.requests`, `io.service_us` (histogram),
//! `serving.engagements`, `gate.decisions`, `gate.delay_us`,
//! `engine.heap_ops`. The prefix is the subsystem that owns the
//! instrument; merged snapshots rely on prefixes staying disjoint.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod span;

pub use export::{chrome_trace_json, TrackFilter};
pub use metrics::{
    Counter, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use span::{ObsSink, SpanArgs, SpanEvent, SpanPhase, SpanRing, TrackKind};
