//! Chrome-trace / Perfetto JSON export.
//!
//! [`chrome_trace_json`] renders a span stream into the Trace Event
//! Format (`{"traceEvents": [...]}`) that `chrome://tracing` and the
//! Perfetto UI load directly. The export is canonical: events are sorted
//! by value first, track ids (`tid`) are assigned in that sorted order,
//! and every number is an integer — so two streams that agree as
//! multisets produce byte-identical files, whatever order the host
//! emitted them in.

use crate::span::{SpanEvent, SpanPhase, TrackKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Which tracks an export includes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrackFilter {
    /// Only tracks covered by the determinism contract (see
    /// [`TrackKind::deterministic`]) — the default, and the only filter
    /// whose output is guaranteed identical across executors.
    #[default]
    Deterministic,
    /// Every track, including [`TrackKind::Engine`] and
    /// [`TrackKind::Host`]. Useful for inspecting a *particular* run;
    /// byte-stability across executors is not promised.
    All,
}

impl TrackFilter {
    /// Whether a track kind passes this filter.
    pub fn admits(self, kind: TrackKind) -> bool {
        match self {
            TrackFilter::Deterministic => kind.deterministic(),
            TrackFilter::All => true,
        }
    }
}

/// Renders `events` as Chrome-trace JSON.
///
/// All events share one process (`pid` 1); each `(kind, track)` pair
/// becomes a thread (`tid`), numbered in canonical track order and named
/// via `thread_name` metadata (e.g. `session/42`, `flash/0`). Timestamps
/// are simulated µs passed through as integers.
pub fn chrome_trace_json(events: &[SpanEvent], filter: TrackFilter) -> String {
    let mut kept: Vec<&SpanEvent> = events.iter().filter(|e| filter.admits(e.kind)).collect();
    kept.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));

    // Stable tid per (kind, track), assigned in canonical sorted order so
    // numbering never depends on emission order.
    let mut tids: BTreeMap<(u8, u64), (u32, TrackKind)> = BTreeMap::new();
    for e in &kept {
        let next = tids.len() as u32 + 1;
        tids.entry(track_key(e)).or_insert((next, e.kind));
    }

    let mut out = String::from("{\"traceEvents\": [");
    let mut first = true;
    for (&(_, track), &(tid, kind)) in &tids {
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
             \"args\": {{\"name\": \"{}/{track}\"}}}}",
                kind.label()
            ),
        );
    }
    for e in &kept {
        let tid = tids[&track_key(e)].0;
        let mut ev = format!("{{\"name\": \"{}\", \"ph\": \"{}\"", e.name, phase_code(e.phase));
        match e.phase {
            SpanPhase::Complete => {
                let _ = write!(ev, ", \"ts\": {}, \"dur\": {}", e.start_us, e.dur_us());
            }
            SpanPhase::Instant => {
                let _ = write!(ev, ", \"ts\": {}, \"s\": \"t\"", e.start_us);
            }
            SpanPhase::Counter => {
                let _ = write!(ev, ", \"ts\": {}", e.start_us);
            }
        }
        let _ = write!(ev, ", \"pid\": 1, \"tid\": {tid}");
        if !e.args.is_empty() {
            ev.push_str(", \"args\": {");
            for (i, (k, v)) in e.args.entries().iter().enumerate() {
                if i > 0 {
                    ev.push_str(", ");
                }
                let _ = write!(ev, "\"{k}\": {v}");
            }
            ev.push('}');
        }
        ev.push('}');
        push_event(&mut out, &mut first, &ev);
    }
    out.push_str("\n]}\n");
    out
}

fn track_key(e: &SpanEvent) -> (u8, u64) {
    let order = match e.kind {
        TrackKind::Session => 0,
        TrackKind::Channel => 1,
        TrackKind::Flash => 2,
        TrackKind::Engine => 3,
        TrackKind::Host => 4,
        TrackKind::Prefetch => 5,
    };
    (order, e.track)
}

fn phase_code(phase: SpanPhase) -> &'static str {
    match phase {
        SpanPhase::Complete => "X",
        SpanPhase::Instant => "i",
        SpanPhase::Counter => "C",
    }
}

fn push_event(out: &mut String, first: &mut bool, rendered: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("\n  ");
    out.push_str(rendered);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanArgs;

    fn sample() -> Vec<SpanEvent> {
        vec![
            SpanEvent::complete(TrackKind::Flash, 0, "flash.service", 50, 90),
            SpanEvent::instant(TrackKind::Session, 7, "gate.shed", 10)
                .with_args(SpanArgs::new().with("digest", 42)),
            SpanEvent::counter(TrackKind::Flash, 0, "flash.depth", 50, 3),
            SpanEvent::complete(TrackKind::Session, 7, "engagement", 10, 60),
            SpanEvent::instant(TrackKind::Engine, 0, "engine.tick", 5),
        ]
    }

    #[test]
    fn export_is_independent_of_emission_order() {
        let mut shuffled = sample();
        shuffled.reverse();
        let a = chrome_trace_json(&sample(), TrackFilter::Deterministic);
        let b = chrome_trace_json(&shuffled, TrackFilter::Deterministic);
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_filter_drops_engine_and_host_tracks() {
        let json = chrome_trace_json(&sample(), TrackFilter::Deterministic);
        assert!(!json.contains("engine.tick"));
        assert!(!json.contains("engine/0"));
        let all = chrome_trace_json(&sample(), TrackFilter::All);
        assert!(all.contains("engine.tick"));
    }

    #[test]
    fn phases_render_with_trace_event_codes() {
        let json = chrome_trace_json(&sample(), TrackFilter::All);
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"ph\": \"C\""));
        assert!(json.contains("\"dur\": 40"));
        assert!(json.contains("\"args\": {\"digest\": 42}"));
    }

    #[test]
    fn tids_are_stable_and_named() {
        let json = chrome_trace_json(&sample(), TrackFilter::Deterministic);
        // Session/7 sorts before flash/0, so it takes tid 1.
        assert!(json.contains("\"args\": {\"name\": \"session/7\"}"));
        assert!(json.contains("\"args\": {\"name\": \"flash/0\"}"));
        let session_meta = json.find("session/7").unwrap();
        let flash_meta = json.find("flash/0").unwrap();
        assert!(session_meta < flash_meta);
    }

    #[test]
    fn empty_stream_is_valid_json() {
        let json = chrome_trace_json(&[], TrackFilter::Deterministic);
        assert_eq!(json, "{\"traceEvents\": [\n]}\n");
    }
}
