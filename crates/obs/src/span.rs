//! Virtual-clock spans and the byte-bounded ring that stores them.
//!
//! A [`SpanEvent`] is an interval or instant on a named track, timestamped
//! in **simulated** microseconds — never host time. Events carry plain
//! values (no heap payloads), so they sort canonically by value and two
//! streams that agree as multisets export byte-identically no matter what
//! order threads emitted them in.
//!
//! The live backend is a [`SpanRing`]: a fixed-capacity overwrite-oldest
//! buffer bounded in bytes at construction. The disabled backend is
//! [`ObsSink::Null`] — emitting through it is a single enum-variant branch.

use std::sync::{Arc, Mutex};

/// The subsystem a span's track belongs to. The track *id* disambiguates
/// within a kind (session token, channel index, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrackKind {
    /// Per-session lifecycle: admission, gate decisions, engagements.
    Session,
    /// Per-channel engagement issue/complete timeline.
    Channel,
    /// Flash device timeline: per-job wait/service, busy, queue depth.
    Flash,
    /// Engine internals (component ticks, heap ops). Event-mode only, so
    /// excluded from deterministic exports.
    Engine,
    /// Host-side activity (dispatch-thread work, wall-clock phases).
    /// Schedule-dependent by nature, so excluded from deterministic
    /// exports.
    Host,
    /// Speculative prefetch staging: per-device-channel windows where
    /// background flash jobs pre-warm the shard cache. Whether a staged
    /// shard was flash-loaded or pinned depends on cache residency at
    /// execution time (host scheduling), so excluded from deterministic
    /// exports.
    Prefetch,
}

impl TrackKind {
    /// Whether spans on this kind of track are part of the determinism
    /// contract: a pure function of the replayed trace, identical across
    /// `--exec threaded|event` and across runs. [`Engine`](Self::Engine)
    /// and [`Host`](Self::Host) tracks are not — they describe *how* a
    /// particular executor ran, not *what* the simulation computed.
    pub fn deterministic(self) -> bool {
        !matches!(self, TrackKind::Engine | TrackKind::Host | TrackKind::Prefetch)
    }

    /// Stable label used in exports and track sorting.
    pub fn label(self) -> &'static str {
        match self {
            TrackKind::Session => "session",
            TrackKind::Channel => "channel",
            TrackKind::Flash => "flash",
            TrackKind::Engine => "engine",
            TrackKind::Host => "host",
            TrackKind::Prefetch => "prefetch",
        }
    }

    /// Canonical ordering index (export lays tracks out in this order).
    fn order(self) -> u8 {
        match self {
            TrackKind::Session => 0,
            TrackKind::Channel => 1,
            TrackKind::Flash => 2,
            TrackKind::Engine => 3,
            TrackKind::Host => 4,
            TrackKind::Prefetch => 5,
        }
    }
}

/// How a span renders in the Chrome-trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanPhase {
    /// A closed interval (`ph: "X"`): `start_us..end_us`.
    Complete,
    /// A point event (`ph: "i"`) at `start_us`.
    Instant,
    /// A sampled counter value (`ph: "C"`) at `start_us`; the first arg is
    /// the series value.
    Counter,
}

/// Maximum key/value pairs a span can carry inline.
const MAX_ARGS: usize = 4;

/// A fixed-capacity, copyable argument list: up to four
/// `(&'static str, u64)` pairs, attached to a span without allocating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanArgs {
    entries: [(&'static str, u64); MAX_ARGS],
    len: u8,
}

impl SpanArgs {
    /// An empty argument list.
    pub fn new() -> Self {
        Self { entries: [("", 0); MAX_ARGS], len: 0 }
    }

    /// Appends a pair, builder-style. Pairs beyond the inline capacity of
    /// four are silently dropped — args are annotations, never data the
    /// simulation depends on.
    pub fn with(mut self, key: &'static str, value: u64) -> Self {
        if (self.len as usize) < MAX_ARGS {
            self.entries[self.len as usize] = (key, value);
            self.len += 1;
        }
        self
    }

    /// The populated pairs.
    pub fn entries(&self) -> &[(&'static str, u64)] {
        &self.entries[..self.len as usize]
    }

    /// Whether no pairs are attached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One observed interval or instant on a virtual-clock track.
///
/// Everything is a plain value: events are `Copy`, compare by value, and
/// carry no references into the emitting subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanEvent {
    /// Which subsystem's track family this event belongs to.
    pub kind: TrackKind,
    /// Track id within the kind (session token, channel index, …).
    pub track: u64,
    /// Event name (a static label, e.g. `"gate.delay"`).
    pub name: &'static str,
    /// Start tick in simulated µs.
    pub start_us: u64,
    /// End tick in simulated µs (equals `start_us` for instants).
    pub end_us: u64,
    /// Render phase.
    pub phase: SpanPhase,
    /// Inline annotations.
    pub args: SpanArgs,
}

impl SpanEvent {
    /// A closed interval on `(kind, track)`.
    pub fn complete(
        kind: TrackKind,
        track: u64,
        name: &'static str,
        start_us: u64,
        end_us: u64,
    ) -> Self {
        Self {
            kind,
            track,
            name,
            start_us,
            end_us,
            phase: SpanPhase::Complete,
            args: SpanArgs::new(),
        }
    }

    /// A point event on `(kind, track)` at `at_us`.
    pub fn instant(kind: TrackKind, track: u64, name: &'static str, at_us: u64) -> Self {
        Self {
            kind,
            track,
            name,
            start_us: at_us,
            end_us: at_us,
            phase: SpanPhase::Instant,
            args: SpanArgs::new(),
        }
    }

    /// A counter sample on `(kind, track)` at `at_us` with value `value`.
    pub fn counter(
        kind: TrackKind,
        track: u64,
        name: &'static str,
        at_us: u64,
        value: u64,
    ) -> Self {
        Self {
            kind,
            track,
            name,
            start_us: at_us,
            end_us: at_us,
            phase: SpanPhase::Counter,
            args: SpanArgs::new().with("value", value),
        }
    }

    /// Replaces the args, builder-style.
    pub fn with_args(mut self, args: SpanArgs) -> Self {
        self.args = args;
        self
    }

    /// Duration in simulated µs (zero for instants).
    pub fn dur_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// The canonical value-based sort key: track layout first (kind
    /// order, track id), then time, then name and payload as
    /// tie-breakers. Sorting by this key makes export output independent
    /// of emission order.
    pub fn sort_key(&self) -> impl Ord + '_ {
        (
            self.kind.order(),
            self.track,
            self.start_us,
            self.end_us,
            self.name,
            self.phase,
            self.args,
        )
    }
}

/// A byte-bounded overwrite-oldest span buffer.
///
/// Capacity is fixed at construction from a byte budget; when full, the
/// oldest event is overwritten and a drop counter increments, so tracing a
/// pathological replay can never grow memory without bound.
pub struct SpanRing {
    inner: Mutex<RingInner>,
    capacity: usize,
}

struct RingInner {
    events: Vec<SpanEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl SpanRing {
    /// A ring bounded at roughly `bytes` of span storage (at least one
    /// event).
    pub fn with_byte_budget(bytes: usize) -> Self {
        let capacity = (bytes / std::mem::size_of::<SpanEvent>()).max(1);
        Self { inner: Mutex::new(RingInner { events: Vec::new(), head: 0, dropped: 0 }), capacity }
    }

    /// How many events the ring can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends an event, overwriting the oldest when full.
    pub fn push(&self, event: SpanEvent) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.events.len() < self.capacity {
            inner.events.push(event);
        } else {
            let head = inner.head;
            inner.events[head] = event;
            inner.head = (head + 1) % self.capacity;
            inner.dropped += 1;
        }
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).events.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the buffered events in arrival order, returning them along
    /// with how many older events were overwritten to make room.
    pub fn drain(&self) -> (Vec<SpanEvent>, u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let head = inner.head;
        let mut events = std::mem::take(&mut inner.events);
        events.rotate_left(head);
        inner.head = 0;
        (events, std::mem::take(&mut inner.dropped))
    }
}

/// Where emitted spans go. Cloning a sink shares the backing ring.
#[derive(Clone, Default)]
pub enum ObsSink {
    /// Tracing disabled: `span` is a no-op branch, nothing is stored.
    #[default]
    Null,
    /// Tracing enabled: events land in the shared ring.
    Ring(Arc<SpanRing>),
}

impl ObsSink {
    /// A sink backed by a fresh ring bounded at `bytes`.
    pub fn ring(bytes: usize) -> Self {
        ObsSink::Ring(Arc::new(SpanRing::with_byte_budget(bytes)))
    }

    /// Whether this sink records anything (lets callers skip building
    /// events entirely on the disabled path).
    #[inline]
    pub fn enabled(&self) -> bool {
        matches!(self, ObsSink::Ring(_))
    }

    /// Records an event (no-op on [`ObsSink::Null`]).
    #[inline]
    pub fn span(&self, event: SpanEvent) {
        if let ObsSink::Ring(ring) = self {
            ring.push(event);
        }
    }

    /// Drains buffered events and the overwrite count; empty for
    /// [`ObsSink::Null`].
    pub fn drain(&self) -> (Vec<SpanEvent>, u64) {
        match self {
            ObsSink::Null => (Vec::new(), 0),
            ObsSink::Ring(ring) => ring.drain(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_cap_at_four_pairs() {
        let args = SpanArgs::new().with("a", 1).with("b", 2).with("c", 3).with("d", 4).with("e", 5);
        assert_eq!(args.entries().len(), 4);
        assert_eq!(args.entries()[3], ("d", 4));
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let ring = SpanRing::with_byte_budget(3 * std::mem::size_of::<SpanEvent>());
        assert_eq!(ring.capacity(), 3);
        for t in 0..5u64 {
            ring.push(SpanEvent::instant(TrackKind::Session, 1, "tick", t));
        }
        let (events, dropped) = ring.drain();
        assert_eq!(dropped, 2);
        let ticks: Vec<u64> = events.iter().map(|e| e.start_us).collect();
        assert_eq!(ticks, vec![2, 3, 4], "oldest overwritten, arrival order kept");
    }

    #[test]
    fn null_sink_records_nothing() {
        let sink = ObsSink::Null;
        assert!(!sink.enabled());
        sink.span(SpanEvent::instant(TrackKind::Flash, 0, "x", 1));
        assert!(sink.drain().0.is_empty());
    }

    #[test]
    fn ring_sink_shares_the_ring_across_clones() {
        let sink = ObsSink::ring(4096);
        let clone = sink.clone();
        clone.span(SpanEvent::complete(TrackKind::Channel, 2, "engage", 10, 30));
        let (events, dropped) = sink.drain();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].dur_us(), 20);
    }

    #[test]
    fn sort_key_orders_by_track_then_time() {
        let mut events = [
            SpanEvent::instant(TrackKind::Flash, 0, "b", 5),
            SpanEvent::instant(TrackKind::Session, 9, "a", 7),
            SpanEvent::instant(TrackKind::Session, 1, "a", 9),
            SpanEvent::instant(TrackKind::Session, 1, "a", 2),
        ];
        events.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        let order: Vec<(u64, u64)> = events.iter().map(|e| (e.track, e.start_us)).collect();
        assert_eq!(order, vec![(1, 2), (1, 9), (9, 7), (0, 5)]);
    }

    #[test]
    fn deterministic_kinds_exclude_engine_and_host() {
        assert!(TrackKind::Session.deterministic());
        assert!(TrackKind::Channel.deterministic());
        assert!(TrackKind::Flash.deterministic());
        assert!(!TrackKind::Engine.deterministic());
        assert!(!TrackKind::Host.deterministic());
        assert!(!TrackKind::Prefetch.deterministic());
    }
}
