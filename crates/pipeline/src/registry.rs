//! The sharded open-session registry.
//!
//! [`StiServer`](crate::server::StiServer) keeps every open session's
//! streaming load (plus, for SLO sessions, its gate profile) in a live
//! [`ServingMix`] — the one input every contended prediction runs against.
//! A single `Mutex<ServingMix>` makes session open/close a global
//! serialization point: at fleet scale (100k sessions opening over a
//! worker pool) every open and every drop contends on one lock.
//!
//! [`ShardedRegistry`] splits the registry into token-hashed shards, each
//! its own `Mutex<ServingMix>` carrying a disjoint session subset and **no
//! backlog**. Correctness rests on two algebraic facts of the mix digest:
//!
//! - the rolling session fold is a *commutative wrapping sum* of
//!   per-session sub-digests ([`ServingMix::session_fold`]), so the folds
//!   of disjoint shards add to the fold of the un-sharded registry;
//! - [`digest_from_parts`] rebuilds `ServingMix::digest_with` bit-for-bit
//!   from `(sharing, backlog, total_sessions, fold)` alone.
//!
//! So the registry answers its two questions at different costs:
//!
//! - **digest probes** ([`ShardedRegistry::digest_with`]) touch each shard
//!   only long enough to read two words (`len`, `fold`) — upserts and
//!   removals on *other* shards never wait;
//! - **full snapshots** ([`ShardedRegistry::snapshot_with`]) take every
//!   shard lock in index order (deadlock-free) and k-way-merge the shards
//!   back into one token-ordered [`ServingMix`], so the digest and the mix
//!   a memoized gate walk is stored under describe the same state.
//!
//! Shard routing uses [`mix_token`] (a hash finalizer) so the server's
//! monotone token sequence spreads evenly instead of striding.

use parking_lot::{Mutex, MutexGuard};
use sti_device::DeviceTopology;
use sti_planner::mix::{ServingMix, SloProfile};
use sti_planner::{digest_from_parts, digest_with_topology, mix_token, CoRunnerLoad, IoSharing};
use sti_storage::BacklogSnapshot;

/// Token-sharded live registry of open-session loads. See the module docs
/// for the digest algebra that makes sharding observation-free.
pub struct ShardedRegistry {
    shards: Vec<Mutex<ServingMix>>,
    sharing: IoSharing,
    /// The device topology every shard mix (and merged view) simulates
    /// against; folded into [`ShardedRegistry::digest_with`] exactly as
    /// [`ServingMix::digest_with`] folds it, so probe digests and
    /// snapshot digests agree on multi-channel devices too.
    topology: DeviceTopology,
}

/// Shard count: enough to spread a worker pool's open/close traffic, small
/// enough that full-snapshot lock sweeps stay cheap.
const SHARDS: usize = 16;

impl ShardedRegistry {
    /// An empty registry under the given sharing mode, on a single-channel
    /// device.
    pub fn new(sharing: IoSharing) -> Self {
        Self::with_topology(sharing, DeviceTopology::single())
    }

    /// An empty registry whose merged views predict against `topology`'s
    /// device channels.
    pub fn with_topology(sharing: IoSharing, topology: DeviceTopology) -> Self {
        let shards = (0..SHARDS)
            .map(|_| Mutex::new(ServingMix::new(sharing).with_topology(topology)))
            .collect();
        Self { shards, sharing, topology }
    }

    /// The IO-sharing mode every shard (and every merged view) carries.
    pub fn sharing(&self) -> IoSharing {
        self.sharing
    }

    fn shard_of(&self, token: u64) -> &Mutex<ServingMix> {
        &self.shards[(mix_token(token) % self.shards.len() as u64) as usize]
    }

    /// Inserts or refreshes one session's load (and gate profile) — the
    /// registration path of [`ServingMix::upsert_session`], touching only
    /// the session's own shard.
    pub fn upsert(&self, token: u64, load: CoRunnerLoad, slo: Option<SloProfile>) {
        self.shard_of(token).lock().upsert_session(token, load, slo);
    }

    /// Removes one session (if present), touching only its own shard.
    pub fn remove(&self, token: u64) -> bool {
        self.shard_of(token).lock().remove_session(token)
    }

    /// Open sessions across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().co_runners()).sum()
    }

    /// Whether no session is registered.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().co_runners() == 0)
    }

    /// The registry digest as if `backlog` were attached — the cheap memo
    /// probe. Each shard is locked only long enough to read its `(len,
    /// fold)` pair; the pairs sum commutatively into the exact digest the
    /// un-sharded registry would report. Shards are read one at a time, so
    /// a probe racing a mutation can see a mixture of before/after states —
    /// callers that store state under a digest must use
    /// [`ShardedRegistry::snapshot_with`], which computes the digest under
    /// all shard locks.
    pub fn digest_with(&self, backlog: &BacklogSnapshot) -> u64 {
        let (total, fold) = self.parts();
        digest_with_topology(digest_from_parts(self.sharing, backlog, total, fold), self.topology)
    }

    fn parts(&self) -> (u64, u64) {
        let mut total = 0u64;
        let mut fold = 0u64;
        for shard in &self.shards {
            let mix = shard.lock();
            total += mix.co_runners() as u64;
            fold = fold.wrapping_add(mix.session_fold());
        }
        (total, fold)
    }

    /// A consistent `(digest, mix)` pair with `backlog` attached: all shard
    /// locks are held (acquired in index order) while both are computed, so
    /// the digest is exactly `mix.digest()` and a memoized result stored
    /// under it can never describe a state the mix didn't see.
    pub fn snapshot_with(&self, backlog: BacklogSnapshot) -> (u64, ServingMix) {
        let guards: Vec<MutexGuard<'_, ServingMix>> =
            self.shards.iter().map(|s| s.lock()).collect();
        let mix = ServingMix::merged_from_shards(guards.iter().map(|g| &**g), self.sharing)
            .with_backlog(backlog);
        let digest = mix.digest();
        (digest, mix)
    }

    /// The merged registry view (no backlog), optionally excluding one
    /// session — what admission and retarget predict against (a retargeting
    /// session does not co-run with itself).
    pub fn merged_excluding(&self, exclude: Option<u64>) -> ServingMix {
        let guards: Vec<MutexGuard<'_, ServingMix>> =
            self.shards.iter().map(|s| s.lock()).collect();
        let mut mix = ServingMix::merged_from_shards(guards.iter().map(|g| &**g), self.sharing);
        drop(guards);
        if let Some(token) = exclude {
            mix.remove_session(token);
        }
        mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sti_device::SimTime;

    fn load_at(us: u64) -> CoRunnerLoad {
        CoRunnerLoad {
            arrival: SimTime::from_us(us),
            jobs: std::sync::Arc::from(
                vec![sti_planner::LayerIoJob { sig: us ^ 0x5bd1, service: SimTime::from_us(40) }]
                    .into_boxed_slice(),
            ),
        }
    }

    #[test]
    fn sharded_digest_matches_the_single_registry() {
        let registry = ShardedRegistry::new(IoSharing::Exclusive);
        let mut single = ServingMix::new(IoSharing::Exclusive);
        for token in 0..64u64 {
            registry.upsert(token, load_at(token * 17), None);
            single.upsert_session(token, load_at(token * 17), None);
        }
        for token in (0..64u64).step_by(3) {
            assert!(registry.remove(token));
            assert!(single.remove_session(token));
        }
        let backlog = BacklogSnapshot::default();
        assert_eq!(registry.digest_with(&backlog), single.digest());
        let (digest, merged) = registry.snapshot_with(backlog);
        assert_eq!(digest, single.digest());
        assert_eq!(merged.sessions().len(), single.sessions().len());
        for (a, b) in merged.sessions().iter().zip(single.sessions()) {
            assert_eq!(a.token, b.token);
        }
    }

    #[test]
    fn topology_digest_matches_the_single_registry() {
        let topology = DeviceTopology::with_channels(4);
        let registry = ShardedRegistry::with_topology(IoSharing::Exclusive, topology);
        let mut single = ServingMix::new(IoSharing::Exclusive).with_topology(topology);
        for token in 0..16u64 {
            registry.upsert(token, load_at(token * 13), None);
            single.upsert_session(token, load_at(token * 13), None);
        }
        let backlog = BacklogSnapshot::default();
        assert_eq!(registry.digest_with(&backlog), single.digest());
        let (digest, merged) = registry.snapshot_with(backlog);
        assert_eq!(digest, single.digest());
        assert_eq!(merged.topology(), topology);
        // The same sessions on a single-channel registry digest differently:
        // the topology is part of the memo identity.
        let plain = ShardedRegistry::new(IoSharing::Exclusive);
        for token in 0..16u64 {
            plain.upsert(token, load_at(token * 13), None);
        }
        assert_ne!(
            registry.digest_with(&BacklogSnapshot::default()),
            plain.digest_with(&BacklogSnapshot::default())
        );
    }

    #[test]
    fn merged_excluding_drops_exactly_one_session() {
        let registry = ShardedRegistry::new(IoSharing::Exclusive);
        for token in 0..8u64 {
            registry.upsert(token, load_at(token), None);
        }
        let view = registry.merged_excluding(Some(5));
        assert_eq!(view.co_runners(), 7);
        assert!(view.sessions().iter().all(|s| s.token != 5));
        assert_eq!(registry.len(), 8);
    }
}
