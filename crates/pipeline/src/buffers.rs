//! The two memory buffers STI allocates (paper §3.1).

use std::collections::HashMap;

use sti_quant::QuantizedBlob;
use sti_transformer::{ModelConfig, ShardId, ShardWeights};

use crate::error::PipelineError;

/// The preload buffer: a small, capacity-bounded cache of *compressed*
/// shards that persists across executions for as long as the app lives.
///
/// Shards from bottom layers are the valuable ones (they are needed first,
/// §5.5), so when the buffer shrinks it evicts from the **top** layers
/// downward.
#[derive(Debug, Default)]
pub struct PreloadBuffer {
    capacity: u64,
    used: u64,
    blobs: HashMap<ShardId, QuantizedBlob>,
}

impl PreloadBuffer {
    /// Creates an empty buffer with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        Self { capacity, used: 0, blobs: HashMap::new() }
    }

    /// Byte capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently held.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Number of shards held.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// Whether the buffer holds nothing.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Whether a shard is resident.
    pub fn contains(&self, id: ShardId) -> bool {
        self.blobs.contains_key(&id)
    }

    /// Borrows a resident shard's blob.
    pub fn get(&self, id: ShardId) -> Option<&QuantizedBlob> {
        self.blobs.get(&id)
    }

    /// Admits a shard.
    ///
    /// Replacing an already-resident shard first releases its bytes.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::PreloadOverflow`] if the blob does not fit;
    /// the buffer is unchanged in that case.
    pub fn insert(&mut self, id: ShardId, blob: QuantizedBlob) -> Result<(), PipelineError> {
        let bytes = blob.byte_size() as u64;
        let freed = self.blobs.get(&id).map_or(0, |b| b.byte_size() as u64);
        let available = self.capacity - self.used + freed;
        if bytes > available {
            return Err(PipelineError::PreloadOverflow { needed: bytes, available });
        }
        if let Some(old) = self.blobs.insert(id, blob) {
            self.used -= old.byte_size() as u64;
        }
        self.used += bytes;
        Ok(())
    }

    /// Removes a shard, returning its blob.
    pub fn remove(&mut self, id: ShardId) -> Option<QuantizedBlob> {
        let blob = self.blobs.remove(&id)?;
        self.used -= blob.byte_size() as u64;
        Some(blob)
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.blobs.clear();
        self.used = 0;
    }

    /// Changes the capacity. When shrinking, evicts shards from the top
    /// layers downward (within a layer, highest slice first) until the
    /// contents fit (§5.5: bottom layers are needed early, preserve them).
    pub fn resize(&mut self, capacity: u64) {
        self.capacity = capacity;
        if self.used <= capacity {
            return;
        }
        let mut ids: Vec<ShardId> = self.blobs.keys().copied().collect();
        // Top layers (and top slices) first.
        ids.sort_by(|a, b| b.cmp(a));
        for id in ids {
            if self.used <= capacity {
                break;
            }
            self.remove(id);
        }
    }

    /// Ids currently resident, in (layer, slice) order.
    pub fn resident_ids(&self) -> Vec<ShardId> {
        let mut ids: Vec<ShardId> = self.blobs.keys().copied().collect();
        ids.sort();
        ids
    }
}

/// The working buffer: one layer's worth of decompressed FP32 shard weights,
/// reused across layers so its size does not grow with the model (§3.1).
#[derive(Debug)]
pub struct WorkingBuffer {
    cfg: ModelConfig,
    scratch: Vec<f32>,
    peak_shards: usize,
}

impl WorkingBuffer {
    /// Creates a working buffer for models of shape `cfg`.
    pub fn new(cfg: ModelConfig) -> Self {
        let scratch = vec![0.0; cfg.shard_param_count()];
        Self { cfg, scratch, peak_shards: 0 }
    }

    /// Decompresses a layer's blobs into executable shard weights.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::PlanMismatch`] if a blob's length disagrees
    /// with the configured shard size.
    pub fn assemble(
        &mut self,
        blobs: &[&QuantizedBlob],
    ) -> Result<Vec<ShardWeights>, PipelineError> {
        let mut out = Vec::with_capacity(blobs.len());
        for blob in blobs {
            if blob.len() != self.cfg.shard_param_count() {
                return Err(PipelineError::PlanMismatch(format!(
                    "blob holds {} weights, shard expects {}",
                    blob.len(),
                    self.cfg.shard_param_count()
                )));
            }
            blob.dequantize_into(&mut self.scratch);
            out.push(ShardWeights::from_flat(&self.scratch, &self.cfg));
        }
        self.peak_shards = self.peak_shards.max(blobs.len());
        Ok(out)
    }

    /// Peak bytes of decompressed weights held for any single layer so far.
    pub fn peak_bytes(&self) -> usize {
        self.peak_shards * self.cfg.shard_fp32_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sti_quant::{Bitwidth, QuantConfig};
    use sti_transformer::synthetic::synthetic_shard;
    use sti_transformer::Model;

    fn blob(cfg: &ModelConfig, seed: u64, bw: Bitwidth) -> QuantizedBlob {
        let shard = synthetic_shard(cfg, seed, 1.0);
        QuantizedBlob::quantize(&shard.flatten(), bw, &QuantConfig::default())
    }

    #[test]
    fn insert_tracks_bytes_and_rejects_overflow() {
        let cfg = ModelConfig::tiny();
        let b = blob(&cfg, 1, Bitwidth::B6);
        let bytes = b.byte_size() as u64;
        let mut buf = PreloadBuffer::new(bytes + 10);
        buf.insert(ShardId::new(0, 0), b.clone()).unwrap();
        assert_eq!(buf.used_bytes(), bytes);
        let err = buf.insert(ShardId::new(0, 1), b).unwrap_err();
        assert!(matches!(err, PipelineError::PreloadOverflow { .. }));
        assert_eq!(buf.len(), 1, "failed insert must not change the buffer");
    }

    #[test]
    fn replacing_a_shard_releases_its_bytes() {
        let cfg = ModelConfig::tiny();
        let big = blob(&cfg, 1, Bitwidth::B6);
        let small = blob(&cfg, 1, Bitwidth::B2);
        let mut buf = PreloadBuffer::new(big.byte_size() as u64);
        buf.insert(ShardId::new(0, 0), big).unwrap();
        buf.insert(ShardId::new(0, 0), small.clone()).unwrap();
        assert_eq!(buf.used_bytes(), small.byte_size() as u64);
    }

    #[test]
    fn resize_evicts_top_layers_first() {
        let cfg = ModelConfig::tiny();
        let b = blob(&cfg, 2, Bitwidth::B2);
        let each = b.byte_size() as u64;
        let mut buf = PreloadBuffer::new(each * 4);
        for (l, s) in [(0u16, 0u16), (0, 1), (1, 0), (1, 1)] {
            buf.insert(ShardId::new(l, s), b.clone()).unwrap();
        }
        buf.resize(each * 2);
        let resident = buf.resident_ids();
        assert_eq!(resident, vec![ShardId::new(0, 0), ShardId::new(0, 1)]);
        assert!(buf.used_bytes() <= buf.capacity());
    }

    #[test]
    fn clear_resets_accounting() {
        let cfg = ModelConfig::tiny();
        let b = blob(&cfg, 3, Bitwidth::B2);
        let mut buf = PreloadBuffer::new(1 << 20);
        buf.insert(ShardId::new(0, 0), b).unwrap();
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.used_bytes(), 0);
    }

    #[test]
    fn working_buffer_round_trips_full_fidelity() {
        let cfg = ModelConfig::tiny();
        let model = Model::synthetic(7, cfg.clone());
        let id = ShardId::new(0, 1);
        let flat = model.shard(id).flatten();
        let b = QuantizedBlob::quantize(&flat, Bitwidth::Full, &QuantConfig::default());
        let mut wb = WorkingBuffer::new(cfg.clone());
        let shards = wb.assemble(&[&b]).unwrap();
        assert_eq!(&shards[0], model.shard(id));
        assert_eq!(wb.peak_bytes(), cfg.shard_fp32_bytes());
    }

    #[test]
    fn working_buffer_rejects_wrong_size_blobs() {
        let cfg = ModelConfig::tiny();
        let other = ModelConfig { hidden: 16, ffn: 32, ..ModelConfig::tiny() };
        let b = blob(&other, 1, Bitwidth::B2);
        let mut wb = WorkingBuffer::new(cfg);
        assert!(matches!(wb.assemble(&[&b]), Err(PipelineError::PlanMismatch(_))));
    }

    #[test]
    fn working_buffer_does_not_grow_with_layers() {
        let cfg = ModelConfig::tiny();
        let mut wb = WorkingBuffer::new(cfg.clone());
        let b = blob(&cfg, 4, Bitwidth::B4);
        for _ in 0..10 {
            let blobs: Vec<&QuantizedBlob> = (0..cfg.heads).map(|_| &b).collect();
            wb.assemble(&blobs).unwrap();
        }
        assert_eq!(wb.peak_bytes(), cfg.heads * cfg.shard_fp32_bytes());
    }
}
