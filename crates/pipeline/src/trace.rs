//! ASCII rendering of pipeline timelines (used by the Figure 1 experiment).

use sti_planner::schedule::SchedulePrediction;

/// Renders a timeline as a two-row-per-layer ASCII Gantt chart over
/// simulated time, `width` characters wide:
///
/// ```text
/// L0 io   ████████
/// L0 comp         ▒▒▒
/// L1 io           ████████
/// ...
/// ```
pub fn render_gantt(timeline: &SchedulePrediction, width: usize) -> String {
    if timeline.layers.is_empty() || timeline.makespan.as_us() == 0 {
        return String::from("(empty timeline)\n");
    }
    let span = timeline.makespan.as_us() as f64;
    let scale = |us: u64| ((us as f64 / span) * width as f64).round() as usize;
    let mut out = String::new();
    for (i, l) in timeline.layers.iter().enumerate() {
        let io_a = scale(l.io_start.as_us());
        let io_b = scale(l.io_end.as_us()).max(io_a);
        let c_a = scale(l.comp_start.as_us());
        let c_b = scale(l.comp_end.as_us()).max(c_a);
        out.push_str(&format!(
            "L{i:<2} io   {}{}\n",
            " ".repeat(io_a),
            "#".repeat((io_b - io_a).max(if l.io_end > l.io_start { 1 } else { 0 }))
        ));
        out.push_str(&format!(
            "L{i:<2} comp {}{}\n",
            " ".repeat(c_a),
            "=".repeat((c_b - c_a).max(1))
        ));
    }
    out.push_str(&format!(
        "makespan {}  stall {} ({:.0}% bubbles)\n",
        timeline.makespan,
        timeline.total_stall,
        timeline.bubble_fraction() * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sti_device::SimTime;
    use sti_planner::schedule::{simulate_pipeline, LayerTiming};

    #[test]
    fn renders_rows_per_layer() {
        let t = simulate_pipeline(
            &[
                LayerTiming { io: SimTime::from_ms(30), comp: SimTime::from_ms(10) },
                LayerTiming { io: SimTime::from_ms(30), comp: SimTime::from_ms(10) },
            ],
            SimTime::ZERO,
        );
        let s = render_gantt(&t, 40);
        assert_eq!(s.lines().count(), 5); // 2 layers x 2 rows + summary
        assert!(s.contains('#'));
        assert!(s.contains('='));
        assert!(s.contains("makespan"));
    }

    #[test]
    fn empty_timeline_renders_placeholder() {
        let t = simulate_pipeline(&[], SimTime::ZERO);
        assert!(render_gantt(&t, 40).contains("empty"));
    }

    #[test]
    fn zero_io_layer_has_no_hash_marks() {
        let t = simulate_pipeline(
            &[LayerTiming { io: SimTime::ZERO, comp: SimTime::from_ms(10) }],
            SimTime::ZERO,
        );
        let s = render_gantt(&t, 40);
        let io_row = s.lines().next().unwrap();
        assert!(!io_row.contains('#'), "preloaded layer must show no IO: {io_row}");
    }
}
