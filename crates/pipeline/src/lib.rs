//! # sti-pipeline
//!
//! STI's execution engine (paper §3, §5.5): a layerwise IO/compute pipeline
//! that loads each layer's selected shard versions as one IO job on a
//! dedicated thread, decompresses them into a reusable working buffer, and
//! computes the layer while the next layer's IO is in flight. A small
//! *preload buffer* of bottom-layer shards warms the pipeline so early
//! layers do not stall.
//!
//! - [`buffers`] — the preload buffer (persistent, capacity-bounded,
//!   evicting top layers first) and the working buffer (one layer's worth of
//!   decompressed weights, reused across layers);
//! - [`executor`] — the pipeline executor: real threads, real storage reads,
//!   real forward passes, with the simulated-time timeline accounted per
//!   layer;
//! - [`engine`] — the app-facing facade: plan once, execute repeatedly,
//!   replan on target/budget changes (§3.2), cache shards between
//!   back-to-back executions (§3.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffers;
pub mod engine;
pub mod error;
pub mod executor;
pub mod trace;

pub use buffers::{PreloadBuffer, WorkingBuffer};
pub use engine::{Inference, StiEngine, StiEngineBuilder};
pub use error::PipelineError;
pub use executor::{ExecutionOutcome, PipelineExecutor};
