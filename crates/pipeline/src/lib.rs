//! # sti-pipeline
//!
//! STI's execution runtime (paper §3, §5.5): a layerwise IO/compute
//! pipeline that loads each layer's selected shard versions as one IO job,
//! decompresses them into a reusable working buffer, and computes the layer
//! while the next layer's IO is in flight. A small *preload buffer* of
//! bottom-layer shards warms the pipeline so early layers do not stall.
//!
//! Two entry points sit on top of the executor:
//!
//! - [`engine::StiEngine`] — the paper's single-app facade: one engagement
//!   at a time, plan once, execute repeatedly, replan on target/budget
//!   changes (§3.2), cache shards between back-to-back executions (§3.3);
//! - [`server::StiServer`] — the serving runtime: one server owns the
//!   model, a shared plan cache, a shared compressed-shard cache, and the
//!   IO scheduler; lightweight [`server::Session`] handles submit
//!   concurrent engagements against it. Single-session results are
//!   bit-identical to the engine's; N concurrent sessions reproduce N
//!   sequential runs exactly (shared caches buy host throughput, not
//!   simulated-time shortcuts).
//!
//! Layer by layer:
//!
//! - [`buffers`] — the preload buffer (persistent, capacity-bounded,
//!   evicting top layers first) and the working buffer (one layer's worth of
//!   decompressed weights, reused across layers);
//! - [`executor`] — the pipeline executor: real threads, real storage reads,
//!   real forward passes, with the simulated-time timeline accounted per
//!   layer; [`executor::PipelineExecutor::execute_on`] borrows an IO lane
//!   from a shared scheduler instead of constructing per-run IO state;
//! - [`engine`] / [`server`] — the facades above.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffers;
pub mod engine;
pub mod error;
pub mod executor;
pub mod registry;
pub mod server;
pub mod trace;

pub use buffers::{PreloadBuffer, WorkingBuffer};
pub use engine::{GenerationOutcome, Inference, StiEngine, StiEngineBuilder};
pub use error::PipelineError;
pub use executor::{ExecutionOutcome, PipelineExecutor};
pub use registry::ShardedRegistry;
pub use server::{
    AdmissionMode, BackpressureMode, ContentionReport, EngagementContention, GateDecision,
    GateReason, PendingEngagement, PrefetchContention, PrefetchReport, ServingStats, Session,
    StiServer, StiServerBuilder,
};
