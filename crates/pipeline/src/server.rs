//! The multi-session serving runtime (the production face of the engine).
//!
//! [`StiEngine`](crate::engine::StiEngine) reproduces the paper's contract
//! for **one** app: plan once, execute repeatedly. A device serving heavy
//! traffic runs **many** concurrent engagements of the same model, and
//! almost everything they need is shareable:
//!
//! - the model's resident parameters (embedding, norms, classifier);
//! - compressed shard blobs (a shared [`ShardCache`] over the store);
//! - execution plans (a [`PlanCache`] keyed by the planning knobs —
//!   replanning happens only on knob changes, §3.2);
//! - preload-buffer contents (read-mostly once built, shared per knob set);
//! - the flash device itself (an [`IoScheduler`] multiplexing layer
//!   requests FIFO-per-engagement, round-robin across engagements).
//!
//! [`StiServer`] owns all of that; [`Session`] is a lightweight handle an
//! app holds, carrying only its knobs and `Arc`s to the resolved plan and
//! preload buffer. Sessions are cheap to open, independently retargetable,
//! and safe to drive from concurrent threads.
//!
//! **Determinism contract:** an engagement's outcome (class, probabilities,
//! simulated timeline, loaded bytes) depends only on the model, the plan,
//! and the tokens — never on cache temperature or on what other sessions
//! are doing. Concurrent serving reproduces sequential results bit-for-bit;
//! the shared caches buy host wall-clock throughput, not simulated-time
//! shortcuts. The serving integration tests pin this down.
//!
//! **Contended track:** alongside the deterministic per-engagement results,
//! the server keeps the dual-track accounting of `sti_storage::scheduler` —
//! every dispatched request feeds the discrete-event flash-queue simulator,
//! and [`StiServer::contention_report`] replays the dispatch sequence to
//! quote each engagement's *contended* latency (plus, via the
//! per-engagement issue clock, the initial queueing between an
//! engagement's issue and its first flash service start).
//!
//! **One predictor, three views:** every contended question the server
//! asks — SLO admission at [`StiServer::session_with_slo`], the infer-time
//! backpressure gate, and [`Session::retarget_slo`] — is answered by
//! building a [`ServingMix`] from the open-session registry (each
//! session's actual [`CoRunnerLoad`] plus, for SLO sessions, its
//! [`SloProfile`]) and handing it to `sti_planner::mix`. The server never
//! assembles prediction lanes by hand; the mix's digest is the one memo
//! identity shared by the SLO-plan cache and the per-session gate memo,
//! so a registry change invalidates both consistently.
//! [`AdmissionMode::Enforce`] rejects sessions whose best plan still
//! misses: backpressure before the queue, not after. Under
//! [`PreloadPolicy::SharingAware`] ([`StiServerBuilder::plan_sharing`]),
//! the SLO search also ranks `|S|` *placements* by marginal value under
//! the mix — a layer an in-window co-resident already streams is never
//! preloaded while un-shared layers want the budget, and the bytes moved
//! are quoted in [`ContentionReport::preload_bytes_reallocated`].
//!
//! **Infer-time backpressure:** admission decides once, at session open —
//! but SLOs are violated by *bursts*, mid-session. With a
//! [`BackpressureMode`] configured ([`StiServerBuilder::backpressure`]),
//! every SLO engagement first passes a gate that re-runs the contended
//! prediction against the queue as it stands now (the registry mix merged
//! with the scheduler's `backlog_snapshot`) and either delays the
//! engagement on the simulated timeline until the prediction meets its SLO
//! (`Queue`, bounded by a maximum delay) or fails fast with
//! [`PipelineError::Backpressure`] (`Shed`). Decisions, queue delays, and
//! shed counts land in [`ContentionReport`]. Gate decisions are a pure
//! function of the deterministic open-session registry — identical between
//! concurrent and sequential replays of the same trace — and shed
//! engagements never touch the scheduler, so the uncontended determinism
//! contract is untouched. In queue mode the walk includes the *second gate
//! pass*: an equal-arrival earliest session is re-gated against
//! later-opened co-arriving load instead of running blind ahead of it
//! (see [`ServingMix::gate`]).
//!
//! **Shared-IO batching:** with a [`BatchPolicy`] window configured
//! ([`StiServerBuilder::batch_policy`]), co-resident sessions requesting
//! byte-identical layers within the window share **one** flash job whose
//! payload fans out as `Arc`s (`sti_storage::batcher`). Batching is
//! invisible to the uncontended track — per-engagement results stay
//! bit-identical to solo runs — and priced honestly on the contended one:
//! batched dispatches appear once in the replay, admission predicts with
//! `IoSharing::Batched`, and [`ContentionReport`] quotes the flash bytes
//! saved and the mean batch occupancy.
//!
//! **Device topology:** the simulated flash device may expose `C`
//! independent *device channels* behind an optional shared bus
//! ([`StiServerBuilder::device_topology`]). Each session's shard placement
//! is striped across device channels — SLO sessions stripe where the
//! search's placement axis puts them, plain sessions round-robin by token
//! — and the stripe is folded into the session's job signatures, so
//! byte-identical requests coalesce only when placed on the *same*
//! device channel, the contended replay serves per-channel FIFO queues on
//! the shared discrete-event engine
//! ([`sti_device::TopologyQueueSim`]), and every contended prediction
//! simulates the same per-channel lanes. Device channels are distinct
//! from the scheduler's per-engagement IO lanes ([`IoChannel`]): a lane
//! is one engagement's FIFO request stream, a device channel is where the
//! simulated flash serves it. `C = 1` (the default) reproduces the legacy
//! single-channel server bit-identically.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use sti_device::{DeviceTopology, FlashModel, HwProfile, SimTime};
use sti_obs::{
    Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, ObsSink, SpanArgs, SpanEvent,
    TrackKind,
};
use sti_planner::compute_plan::dynabert_widths_for;
use sti_planner::mix::{
    plan_for_slo_mix, GateOutcome, GatePolicy, MixLaneSummary, PreloadPolicy, ServingMix,
    SloProfile,
};
use sti_planner::prefetch::{
    EngagementKey as PrefetchKey, KeyId, PrefetchConfig, PrefetchMode, PrefetchPlan, Prefetcher,
    PrefetcherStats,
};
use sti_planner::serving::{ServingPlan, ServingPlanCache, ServingPlanKey};
use sti_planner::{
    align_io_completions, contended_makespan, plan_two_stage, CoRunnerLoad, ExecutionPlan,
    ImportanceProfile, IoSharing, PlanCache, PlanCacheStats, PlanKey,
};
use sti_quant::Bitwidth;
use sti_storage::{
    BacklogSnapshot, BatchPolicy, CachedSource, FlashDispatchEvent, IoChannel, IoScheduler,
    IoSchedulerStats, LayerRequest, PrefetchPoolStats, ShardCache, ShardCacheStats, ShardKey,
    ShardSource, SpeculativeJob,
};
use sti_transformer::{Model, ShardId};

use crate::buffers::PreloadBuffer;
use crate::engine::{GenerationOutcome, Inference};
use crate::error::PipelineError;
use crate::executor::{assemble_plan_submodel, PipelineExecutor};
use crate::registry::ShardedRegistry;

/// What the server does with an engagement whose best SLO-aware plan still
/// misses its SLO under the predicted contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionMode {
    /// No admission checks (the pre-SLO behaviour).
    #[default]
    Disabled,
    /// Admit everything but count would-be rejections
    /// ([`ServingStats::monitor_violations`]).
    Monitor,
    /// Reject with [`PipelineError::AdmissionRejected`].
    Enforce,
}

/// What the server does, per engagement, when the live flash-queue
/// prediction says the engagement would miss its session's SLO *now* —
/// admission's mid-session counterpart. Only SLO sessions are gated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressureMode {
    /// No infer-time gate (the pre-backpressure behaviour, and the
    /// default): every engagement executes, SLO misses only show up in the
    /// contention report.
    #[default]
    Off,
    /// Delay the engagement (on the simulated timeline) until the predicted
    /// contended latency meets the SLO, up to this maximum queue delay; if
    /// even the maximum cannot save it, fail fast with
    /// [`PipelineError::Backpressure`].
    Queue(SimTime),
    /// Fail fast with [`PipelineError::Backpressure`] whenever the
    /// prediction *now* misses the SLO — never wait.
    Shed,
}

/// One backpressure-gate decision, recorded per gated engagement.
/// Decisions are a pure function of the open-session registry (see the
/// module docs), so concurrent and sequential replays of the same trace
/// produce identical decision logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateDecision {
    /// The session's registry token (open order).
    pub session: u64,
    /// The session's trace-supplied arrival on the simulated timeline —
    /// the tick gate spans anchor to.
    pub arrival: SimTime,
    /// The SLO the gate held the engagement to.
    pub slo: SimTime,
    /// Predicted contended latency at the chosen delay (for a shed
    /// decision: the best achievable prediction, which still missed).
    pub predicted: SimTime,
    /// Queue delay applied on the simulated timeline (zero when the
    /// prediction met the SLO immediately, and for shed decisions).
    pub delay: SimTime,
    /// Whether the engagement was shed instead of executed.
    pub shed: bool,
    /// Whether the decision came from the second gate pass: the session was
    /// the equal-arrival earliest and was re-gated against later-opened
    /// co-arriving load (queue mode only; see
    /// [`ServingMix::gate`]).
    pub re_gated: bool,
    /// What drove the decision: the deciding mix digest and the load the
    /// prediction ran against.
    pub reason: GateReason,
}

/// The structured *why* behind a [`GateDecision`]: the mix digest the
/// decision was memoized under and a summary of the load the contended
/// prediction priced — so a shed or delay line in the serve report can
/// name the co-runner lane and backlog volume that crowded the session
/// out. A pure function of the mix (see [`ServingMix::lane_summary`]), so
/// replays derive identical reasons.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateReason {
    /// The mix digest the decision was computed (and memoized) under.
    pub digest: u64,
    /// Open co-runner sessions the prediction priced (the deciding
    /// session itself excluded).
    pub co_runners: usize,
    /// External-backlog channels with queued or in-flight work.
    pub backlog_channels: usize,
    /// Serialized bytes queued in the external backlog.
    pub backlog_bytes: u64,
    /// The heaviest co-runner lane by total streamed service time, as
    /// `(registry token, total service time)` — the lane most responsible
    /// for the contention the prediction saw. `None` when the session had
    /// the mix to itself.
    pub dominant_lane: Option<(u64, SimTime)>,
    /// Speculative prefetch bytes queued behind the scheduler when the
    /// decision was shaped — labelled separately from
    /// [`GateReason::backlog_bytes`] so a blame line never attributes a
    /// delay or shed to background speculation. A reporting label only:
    /// the gate walk, the mix digest, and the contended prediction never
    /// read it (speculative jobs are excluded from demand backlog
    /// snapshots), so `shed`/`delay`/`predicted` are bit-identical with
    /// the prefetcher on or off. Always zero with prefetch off.
    pub speculative_bytes: u64,
}

/// Admission and engagement counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// SLO sessions admitted.
    pub admitted_sessions: u64,
    /// SLO sessions rejected by [`AdmissionMode::Enforce`].
    pub rejected_sessions: u64,
    /// SLO sessions that would have been rejected under
    /// [`AdmissionMode::Monitor`].
    pub monitor_violations: u64,
    /// Engagements executed (across all sessions).
    pub engagements: u64,
    /// Largest number of engagements in flight at once.
    pub peak_concurrent_engagements: usize,
    /// Engagements the backpressure gate shed
    /// ([`PipelineError::Backpressure`]).
    pub shed_engagements: u64,
    /// Engagements the backpressure gate queue-delayed before executing.
    pub queued_engagements: u64,
    /// Bytes of default-prefix preload the sharing-aware `|S|` search moved
    /// off layers in-window co-residents already stream (summed over
    /// admitted SLO sessions; zero under
    /// [`PreloadPolicy::PerSession`]).
    pub preload_bytes_reallocated: u64,
}

/// One engagement on the contended track: the latency it would have seen on
/// the contended flash device (its striped device channels) versus its
/// uncontended outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngagementContention {
    /// The scheduler IO lane (per-engagement channel id) the engagement
    /// streamed through — not a device channel.
    pub channel: u64,
    /// The session (registry token) the engagement belonged to — joins the
    /// report against [`GateDecision::session`].
    pub session: u64,
    /// The deterministic (uncontended) simulated makespan it reported.
    pub uncontended: SimTime,
    /// Its makespan when the recorded dispatch sequence is replayed through
    /// the flash-queue simulator, measured from its first flash service
    /// start (service-onward — the quantity the admission and gate
    /// predictions are held to; see [`EngagementContention::end_to_end`]
    /// for the issue-inclusive number).
    pub contended: SimTime,
    /// The engagement's effective issue time on the simulated timeline:
    /// its session arrival plus any gate delay, advanced past the
    /// session's previous engagement's contended completion (a session
    /// issues its next engagement only once the previous one returned).
    pub issue: SimTime,
    /// Initial queueing: simulated time between [`EngagementContention::issue`]
    /// and the engagement's first flash service start. Zero for engagements
    /// whose window was clean (or that streamed nothing).
    pub initial_queueing: SimTime,
    /// The SLO its session carried, if any.
    pub slo: Option<SimTime>,
}

impl EngagementContention {
    /// Extra latency attributable to co-runners.
    pub fn queueing(&self) -> SimTime {
        self.contended.saturating_sub(self.uncontended)
    }

    /// Issue-to-completion latency: the initial queueing charged from the
    /// per-engagement issue clock plus the service-onward contended
    /// makespan.
    pub fn end_to_end(&self) -> SimTime {
        self.initial_queueing + self.contended
    }

    /// Whether the contended latency met the session SLO (`None` when the
    /// session had none).
    pub fn met_slo(&self) -> Option<bool> {
        self.slo.map(|slo| self.contended <= slo)
    }
}

/// The contended-track report: per-engagement contended latencies plus
/// queue-level aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionReport {
    /// Engagements in execution-record order.
    pub engagements: Vec<EngagementContention>,
    /// Total simulated flash busy time across the replay (batched jobs are
    /// served — and charged — once).
    pub flash_busy: SimTime,
    /// Completion time of the last job on the contended queue.
    pub queue_makespan: SimTime,
    /// Deepest the flash queue got during the replay.
    pub max_queue_depth: usize,
    /// Flash jobs that carried more than one engagement's request (zero
    /// with batching off).
    pub batched_dispatches: u64,
    /// Serialized bytes co-resident sessions did **not** re-read from flash
    /// thanks to shared-IO batching.
    pub flash_bytes_saved: u64,
    /// Mean engagements per flash job (1.0 with batching off; up to the
    /// co-resident session count when every dispatch coalesces). Zero when
    /// nothing was dispatched.
    pub mean_batch_occupancy: f64,
    /// Backpressure-gate decisions, ordered by session token (each
    /// session's decisions in engagement order). Empty with the gate off.
    pub gate: Vec<GateDecision>,
    /// Bytes of default-prefix preload the sharing-aware `|S|` search moved
    /// off layers in-window co-residents already stream, summed over
    /// admitted SLO sessions ([`ServingStats::preload_bytes_reallocated`]).
    pub preload_bytes_reallocated: u64,
    /// Speculative prefetch IO priced into the idle windows of the demand
    /// replay above (`None` with the prefetcher off). Speculation is
    /// strictly fenced — demand completions are computed first, from the
    /// demand dispatch log alone — so this block can only *add* background
    /// rows, never move a demand latency.
    pub prefetch: Option<PrefetchContention>,
}

/// Speculative prefetch IO on the contended track, priced honestly into
/// the idle windows of the demand replay: each background job occupies
/// real simulated channel time, but only time the demand timeline left
/// idle — a job preempted by demand work resumes in the next gap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchContention {
    /// Speculative flash jobs dispatched.
    pub jobs: u64,
    /// Bytes the speculation read from flash (cold stages).
    pub speculated_bytes: u64,
    /// Bytes pinned from already-resident blobs at zero flash cost.
    pub pinned_bytes: u64,
    /// Simulated channel time the speculative jobs occupied (all of it
    /// inside demand-idle windows).
    pub busy: SimTime,
    /// Speculative jobs that demand work pushed around: delayed past
    /// their arrival or split across idle windows. Demand never waits for
    /// speculation — preemption only ever runs this direction.
    pub preempted: u64,
    /// Completion time of the last speculative job on its channel.
    pub makespan: SimTime,
}

/// The prefetcher's end-to-end report surface: the Markov model's
/// counters, the staging pool's hit accounting, and the speculative
/// dispatch totals ([`StiServer::prefetch_report`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchReport {
    /// The configured mode.
    pub mode: PrefetchMode,
    /// Markov-model counters (observations, plans, rejections, feedback).
    pub model: PrefetcherStats,
    /// Staging-pool counters (staged/pinned/hit bytes, evictions).
    pub pool: PrefetchPoolStats,
    /// Speculative flash jobs dispatched so far.
    pub jobs: u64,
    /// Bytes speculatively read from flash.
    pub speculated_bytes: u64,
    /// Bytes pinned from resident blobs at zero flash cost.
    pub pinned_bytes: u64,
}

impl ContentionReport {
    /// Engagements the backpressure gate shed.
    pub fn shed_count(&self) -> u64 {
        self.gate.iter().filter(|d| d.shed).count() as u64
    }

    /// Engagements the gate queue-delayed before executing.
    pub fn queue_delayed(&self) -> u64 {
        self.gate.iter().filter(|d| !d.shed && d.delay > SimTime::ZERO).count() as u64
    }

    /// Gate decisions that came from the second gate pass (an
    /// equal-arrival earliest session re-gated against later-opened
    /// co-arriving load).
    pub fn re_gated_count(&self) -> u64 {
        self.gate.iter().filter(|d| d.re_gated).count() as u64
    }

    /// The largest queue delay the gate applied.
    pub fn max_queue_delay(&self) -> SimTime {
        self.gate.iter().filter(|d| !d.shed).map(|d| d.delay).max().unwrap_or(SimTime::ZERO)
    }
    /// Nearest-rank percentile of contended latencies (`p` in `[0, 1]`).
    /// Zero when no engagements ran.
    pub fn latency_percentile(&self, p: f64) -> SimTime {
        assert!((0.0..=1.0).contains(&p), "percentile must be within [0, 1]");
        if self.engagements.is_empty() {
            return SimTime::ZERO;
        }
        let mut latencies: Vec<SimTime> = self.engagements.iter().map(|e| e.contended).collect();
        latencies.sort_unstable();
        let rank = ((p * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1]
    }

    /// Fraction of SLO-carrying engagements whose contended latency met the
    /// SLO (`None` when no engagement carried one).
    pub fn slo_hit_rate(&self) -> Option<f64> {
        let with_slo: Vec<bool> = self.engagements.iter().filter_map(|e| e.met_slo()).collect();
        if with_slo.is_empty() {
            return None;
        }
        Some(with_slo.iter().filter(|&&met| met).count() as f64 / with_slo.len() as f64)
    }
}

/// Prices the recorded speculative dispatches into the **idle windows** of
/// an already-computed demand replay: per device channel, a speculative
/// job accumulates service time only while the demand timeline is idle —
/// any demand busy interval overlapping its window pushes it out (counted
/// in `preempted`), never the other way around. Demand completions are
/// inputs here, so speculation cannot move a demand latency by
/// construction; what it *costs* (channel time, flash bytes) is still
/// charged for real.
fn price_speculation(
    spec: &[FlashDispatchEvent],
    demand: &sti_device::TopologyReport,
) -> PrefetchContention {
    let mut out = PrefetchContention::default();
    let mut per_dc: BTreeMap<u16, Vec<&FlashDispatchEvent>> = BTreeMap::new();
    for e in spec {
        per_dc.entry(e.device_channel).or_default().push(e);
    }
    for (dc, mut jobs) in per_dc {
        jobs.sort_by_key(|e| (e.arrival, e.seq));
        let mut intervals: Vec<(SimTime, SimTime)> = demand
            .channels
            .get(dc as usize)
            .map(|c| c.completions.iter().map(|j| (j.start, j.completion)).collect())
            .unwrap_or_default();
        intervals.sort_unstable();
        // The channel serves its speculative queue FIFO in the gaps, so a
        // job starts no earlier than the previous one finished.
        let mut cursor = SimTime::ZERO;
        for e in jobs {
            let service = e.io_delay;
            let earliest = cursor.max(e.arrival);
            let mut t = earliest;
            let mut rem = service;
            let mut cut = false;
            for &(s, end) in &intervals {
                if end <= t || rem == SimTime::ZERO {
                    continue;
                }
                if s >= t + rem {
                    break;
                }
                // Demand occupies part of the window: run `t..s` (if any),
                // then yield until the demand interval ends.
                if s > t {
                    rem = rem.saturating_sub(s.saturating_sub(t));
                }
                t = end;
                cut = true;
            }
            let finish = t + rem;
            out.jobs += 1;
            out.speculated_bytes += e.bytes;
            out.pinned_bytes += e.hit_bytes;
            out.busy += service;
            if cut || finish > earliest + service {
                out.preempted += 1;
            }
            if finish > out.makespan {
                out.makespan = finish;
            }
            cursor = finish;
        }
    }
    out
}

/// What one engagement contributed to the contended track: enough to replay
/// its pipeline recurrence against the simulated queue.
struct EngagementRecord {
    channel: u64,
    session: u64,
    slo: Option<SimTime>,
    /// The engagement's issue time on the simulated timeline (session
    /// arrival plus gate delay — the arrival its channel was opened at).
    issue: SimTime,
    /// Per-layer: did the layer stream through the scheduler?
    layer_has_io: Vec<bool>,
    /// Per-layer compute delay (uniform across a plan's layers).
    comp: SimTime,
    uncontended: SimTime,
}

/// Builder for [`StiServer`].
pub struct StiServerBuilder {
    model: Model,
    source: Arc<dyn ShardSource>,
    hw: HwProfile,
    flash: FlashModel,
    importance: ImportanceProfile,
    default_target: SimTime,
    default_preload_budget: u64,
    bitwidths: Vec<Bitwidth>,
    widths: Vec<usize>,
    throttle_scale: f64,
    io_workers: usize,
    shard_cache_bytes: u64,
    admission: AdmissionMode,
    dram: Option<FlashModel>,
    batch: BatchPolicy,
    backpressure: BackpressureMode,
    plan_sharing: PreloadPolicy,
    topology: DeviceTopology,
    prefetch: PrefetchConfig,
}

impl StiServerBuilder {
    /// Default target latency `T` for sessions opened without knobs
    /// (default 200 ms).
    pub fn target(mut self, target: SimTime) -> Self {
        self.default_target = target;
        self
    }

    /// Default preload-buffer budget `|S|` in bytes (default 1 MiB).
    pub fn preload_budget(mut self, bytes: u64) -> Self {
        self.default_preload_budget = bytes;
        self
    }

    /// Fidelity versions available in the store (default: all).
    pub fn bitwidths(mut self, bitwidths: &[Bitwidth]) -> Self {
        self.bitwidths = bitwidths.to_vec();
        self
    }

    /// Allowed submodel widths (default: DynaBERT's {3, 6, 9, 12}).
    pub fn widths(mut self, widths: &[usize]) -> Self {
        self.widths = widths.to_vec();
        self
    }

    /// Wall-clock throttling of simulated IO (demonstrations only).
    pub fn throttle(mut self, scale: f64) -> Self {
        self.throttle_scale = scale;
        self
    }

    /// Host IO-worker threads in the scheduler pool (default 1). Workers
    /// are host-side parallelism only; how many flash channels the
    /// *simulated device* exposes is
    /// [`StiServerBuilder::device_topology`].
    pub fn io_workers(mut self, workers: usize) -> Self {
        self.io_workers = workers.max(1);
        self
    }

    /// The simulated device's flash topology (default: one channel, no
    /// shared bus — the legacy device). With `C > 1`, the IO scheduler
    /// stripes each session's shard placement across device channels, the
    /// contended track replays per-channel FIFO queues, batching coalesces
    /// only same-channel byte-identical requests, and the SLO search ranks
    /// *which* channels a candidate stripes across alongside its
    /// `(T, |S|)` placements. `C = 1` reproduces the single-channel server
    /// bit-identically.
    pub fn device_topology(mut self, topology: DeviceTopology) -> Self {
        self.topology = topology;
        self
    }

    /// Convenience for [`StiServerBuilder::device_topology`]: `channels`
    /// flash channels with no shared-bus charge.
    pub fn channels(self, channels: u16) -> Self {
        self.device_topology(DeviceTopology::with_channels(channels))
    }

    /// Byte budget of the shared compressed-shard cache (default 4 MiB;
    /// zero disables cross-engagement blob reuse).
    pub fn shard_cache_bytes(mut self, bytes: u64) -> Self {
        self.shard_cache_bytes = bytes;
        self
    }

    /// Admission policy for SLO sessions (default
    /// [`AdmissionMode::Disabled`]).
    pub fn admission(mut self, mode: AdmissionMode) -> Self {
        self.admission = mode;
        self
    }

    /// Opt-in DRAM-residency mode of the contended track: bytes resident in
    /// the shared shard cache are charged at DRAM service time
    /// ([`FlashModel::dram_residency`]) when the dispatch sequence is
    /// replayed. Off by default (cache hits still pay flash time, the
    /// conservative accounting).
    pub fn dram_residency(mut self, enabled: bool) -> Self {
        self.dram = enabled.then(FlashModel::dram_residency);
        self
    }

    /// Shared-IO batching policy (default [`BatchPolicy::Off`]): with a
    /// window configured, sessions requesting byte-identical layers within
    /// it share one flash job — N identical co-runners pay near-1× flash
    /// instead of N×. SLO admission then predicts with
    /// [`IoSharing::Batched`], so windows of co-arriving sessions admit
    /// where an unbatched prediction would reject. Per-engagement
    /// *results* are unaffected (the determinism contract holds either
    /// way).
    pub fn batch_policy(mut self, policy: BatchPolicy) -> Self {
        self.batch = policy;
        self
    }

    /// Infer-time backpressure policy for SLO sessions (default
    /// [`BackpressureMode::Off`]): before each engagement, the server
    /// re-runs the contended prediction against the live flash-queue mix
    /// and either delays the engagement until the prediction meets its SLO
    /// (`Queue`) or fails fast with [`PipelineError::Backpressure`]
    /// (`Shed`). Admission decides at session open; this gate reacts to
    /// bursts mid-session.
    pub fn backpressure(mut self, mode: BackpressureMode) -> Self {
        self.backpressure = mode;
        self
    }

    /// `|S|` placement policy for SLO searches (default
    /// [`PreloadPolicy::PerSession`]). Under
    /// [`PreloadPolicy::SharingAware`], the search ranks preload
    /// placements by marginal contended latency under the live mix: a
    /// layer an in-window co-resident already streams is never preloaded
    /// while an un-shared layer wants the budget, and a zero-`|S|`
    /// allocation that rides the co-residents' batches wholesale can win
    /// outright. Only meaningful with a batching window configured.
    pub fn plan_sharing(mut self, policy: PreloadPolicy) -> Self {
        self.plan_sharing = policy;
        self
    }

    /// Markov next-engagement prefetching (default
    /// [`PrefetchMode::Off`]): at each engagement completion the server
    /// observes the session's `(model, knob-set)` key in a per-client
    /// Markov chain, and when an edge clears the confidence floor it
    /// emits a budgeted [`PrefetchPlan`] — speculative background flash
    /// jobs that warm the predicted next engagement's streamed working
    /// set into the shard cache's staging pool during idle device-channel
    /// windows. Speculation is priced honestly on the contended track and
    /// strictly fenced off the demand path: demand dispatches always
    /// preempt it, gate decisions never read it, and a wrong prediction
    /// costs wasted bytes, never an SLO miss.
    pub fn prefetch(mut self, cfg: PrefetchConfig) -> Self {
        self.prefetch = cfg;
        self
    }

    /// Starts the IO scheduler and returns the ready server. No planning
    /// happens yet — plans and preload buffers materialize lazily, once per
    /// knob combination, when sessions open.
    pub fn build(self) -> StiServer {
        let shard_cache = Arc::new(ShardCache::new(self.shard_cache_bytes));
        if self.prefetch.enabled() {
            shard_cache.enable_prefetch_pool(self.prefetch.budget_bytes);
        }
        let cached_source: Arc<dyn ShardSource> =
            Arc::new(CachedSource::new(self.source.clone(), shard_cache.clone()));
        let scheduler = IoScheduler::spawn_topology(
            self.source.clone(),
            self.flash,
            self.io_workers,
            self.throttle_scale,
            Some(shard_cache.clone()),
            self.batch,
            self.topology,
        );
        let cfg = self.model.config();
        let fingerprint = format!(
            "model-{}x{}-h{}-f{}-v{}",
            cfg.layers, cfg.heads, cfg.hidden, cfg.ffn, cfg.vocab
        );
        let sharing = match self.batch.window() {
            Some(window) => IoSharing::Batched(window),
            None => IoSharing::Exclusive,
        };
        let registry = MetricsRegistry::new();
        let ins = ServingInstruments::resolve(&registry);
        StiServer {
            inner: Arc::new(ServerInner {
                model: self.model,
                cached_source,
                shard_cache,
                scheduler,
                hw: self.hw,
                flash: self.flash,
                importance: RwLock::new(self.importance),
                bitwidths: self.bitwidths,
                widths: self.widths,
                throttle_scale: self.throttle_scale,
                fingerprint,
                generation: AtomicU64::new(0),
                default_target: self.default_target,
                default_preload_budget: self.default_preload_budget,
                plan_cache: PlanCache::new(),
                preloads: Mutex::new(HashMap::new()),
                admission: self.admission,
                dram: self.dram,
                batch: self.batch,
                backpressure: self.backpressure,
                plan_sharing: self.plan_sharing,
                slo_cache: ServingPlanCache::new(),
                admission_gate: Mutex::new(()),
                open_sessions: AtomicUsize::new(0),
                next_session_token: AtomicU64::new(0),
                live_mix: ShardedRegistry::with_topology(sharing, self.topology),
                gate_walk_memo: Mutex::new(None),
                active_channels: Mutex::new(HashMap::new()),
                active_engagements: AtomicUsize::new(0),
                registry,
                ins,
                obs: Mutex::new(ObsSink::Null),
                engagement_log: Mutex::new(Vec::new()),
                gate_log: Mutex::new(Vec::new()),
                prefetch: self.prefetch.enabled().then(|| PrefetchState::new(self.prefetch)),
            }),
        }
    }
}

/// The server-side prefetch runtime: the shared Markov model plus the
/// key-to-working-set registry that turns a predicted [`KeyId`] back into
/// the concrete plan/preload/stripe to stage.
struct PrefetchState {
    cfg: PrefetchConfig,
    /// The Markov model. Observations are serialized through this lock;
    /// under the event executor completions arrive in deterministic
    /// simulated order, so the prediction stream is deterministic too.
    model: Mutex<Prefetcher>,
    /// What to materialize when a key is predicted, registered the first
    /// time the key is *observed* — a prediction always names a key some
    /// session has already run, so the lookup cannot miss in practice.
    targets: Mutex<HashMap<KeyId, PrefetchTarget>>,
}

/// The resolved working set behind one engagement key.
#[derive(Clone)]
struct PrefetchTarget {
    plan: Arc<ExecutionPlan>,
    preload: Arc<PreloadBuffer>,
    stripe: u16,
}

impl PrefetchState {
    fn new(cfg: PrefetchConfig) -> Self {
        Self { cfg, model: Mutex::new(Prefetcher::new(cfg)), targets: Mutex::new(HashMap::new()) }
    }
}

/// One memoized full gate walk: the mix digest it ran against, every open
/// SLO session's outcome from that walk ([`ServingMix::gate_all`]), and
/// the lane summary the walk's reasons derive from — computed once per
/// walk so per-decision reason assembly stays O(1).
type GateWalkMemo = (u64, Arc<HashMap<u64, GateOutcome>>, MixLaneSummary);

/// The server's named instruments, resolved once at build so hot paths
/// never touch the registry map. [`StiServer::serving_stats`] reconstructs
/// [`ServingStats`] from these — the instruments *are* the counters, not a
/// copy of them.
struct ServingInstruments {
    admitted_sessions: Counter,
    rejected_sessions: Counter,
    monitor_violations: Counter,
    engagements: Counter,
    shed_engagements: Counter,
    queued_engagements: Counter,
    /// Peak-tracking gauge: only the high-water mark is maintained (the
    /// live value stays on `ServerInner::active_engagements`).
    peak_engagements: Gauge,
    /// Bytes of preload the sharing-aware `|S|` search moved, as a gauge:
    /// retargets *replace* a session's contribution (sub then add), so a
    /// monotonic counter cannot represent it.
    preload_bytes_reallocated: Gauge,
    gate_decisions: Counter,
    gate_delay_us: Histogram,
    gate_predicted_us: Histogram,
}

impl ServingInstruments {
    fn resolve(registry: &MetricsRegistry) -> Self {
        Self {
            admitted_sessions: registry.counter("serving.admitted_sessions"),
            rejected_sessions: registry.counter("serving.rejected_sessions"),
            monitor_violations: registry.counter("serving.monitor_violations"),
            engagements: registry.counter("serving.engagements"),
            shed_engagements: registry.counter("serving.shed_engagements"),
            queued_engagements: registry.counter("serving.queued_engagements"),
            peak_engagements: registry.gauge("serving.peak_concurrent_engagements"),
            preload_bytes_reallocated: registry.gauge("serving.preload_bytes_reallocated"),
            gate_decisions: registry.counter("gate.decisions"),
            gate_delay_us: registry.histogram("gate.delay_us"),
            gate_predicted_us: registry.histogram("gate.predicted_us"),
        }
    }
}

struct ServerInner {
    model: Model,
    /// The store fronted by the shared shard cache; all session reads —
    /// preload fills and generation streams — go through here.
    cached_source: Arc<dyn ShardSource>,
    shard_cache: Arc<ShardCache>,
    scheduler: IoScheduler,
    hw: HwProfile,
    flash: FlashModel,
    /// Behind a lock so a re-profiled table can be installed at runtime
    /// ([`StiServer::set_importance`]); plans derived from the old table are
    /// dropped at the same time.
    importance: RwLock<ImportanceProfile>,
    bitwidths: Vec<Bitwidth>,
    widths: Vec<usize>,
    throttle_scale: f64,
    fingerprint: String,
    /// Bumped by [`StiServer::invalidate_plans`] and folded into every
    /// [`PlanKey`], so a session that raced an invalidation inserts its
    /// stale plan (and preload buffer) under an unreachable key instead of
    /// repopulating the cleared caches. Plans and preload buffers are keyed
    /// identically, so a plan can never be paired with a buffer built for a
    /// different generation.
    generation: AtomicU64,
    default_target: SimTime,
    default_preload_budget: u64,
    plan_cache: PlanCache,
    /// One immutable, shared preload buffer per plan key (read-mostly state:
    /// built once under the lock, then only read through `Arc`s).
    preloads: Mutex<HashMap<PlanKey, Arc<PreloadBuffer>>>,
    admission: AdmissionMode,
    /// DRAM-residency model for the contended track, when opted in.
    dram: Option<FlashModel>,
    /// Shared-IO batching policy the scheduler runs (and admission models).
    batch: BatchPolicy,
    /// Infer-time backpressure policy for SLO sessions.
    backpressure: BackpressureMode,
    /// `|S|` placement policy for SLO searches.
    plan_sharing: PreloadPolicy,
    /// Memoized SLO searches, keyed by knobs + mix digest + `|S|` policy.
    slo_cache: ServingPlanCache,
    /// Serializes SLO session opens: the admission decision and the
    /// open-session increment must be atomic with respect to each other.
    admission_gate: Mutex<()>,
    /// Sessions currently open — the co-runner count admission plans for.
    /// Ungated `session_with` opens and session drops can still move it
    /// while an SLO open is deciding; those are unconditional-admit paths,
    /// indistinguishable from load arriving right after the decision.
    open_sessions: AtomicUsize,
    /// Monotonic token handed to each session, keying `live_mix`.
    next_session_token: AtomicU64,
    /// The open-session registry — each open session's actual streaming IO
    /// load (with arrival offset) plus, for SLO sessions, its gate profile:
    /// what SLO admission and the backpressure gate feed the contended
    /// prediction instead of modeling co-runners as clones of the
    /// candidate. Sharded by token hash so fleet-scale opens and drops on
    /// a worker pool touch per-shard locks, not one global one; the
    /// per-shard rolling folds sum commutatively into the same digest the
    /// un-sharded registry would report (see [`ShardedRegistry`]). The
    /// merged view stays token-ordered, so the registration order
    /// predictions replay is deterministic.
    live_mix: ShardedRegistry,
    /// The last full gate walk, keyed by the mix digest it ran against.
    /// [`ServingMix::gate_all`] prices every open SLO session in one
    /// `(arrival, token)` walk; after a registry change, the first gate
    /// decision pays for that walk and every other session's decision —
    /// including each session's *first* — is a lookup. Decisions stay a
    /// pure function of the mix, so sharing the walk across sessions
    /// changes nothing observable.
    gate_walk_memo: Mutex<Option<GateWalkMemo>>,
    /// Scheduler channel → session token for engagements currently
    /// executing. The backpressure gate prices registered sessions from the
    /// registry (deterministic) and must not double-count their live queue
    /// entries; only channels *not* in this map count as external backlog.
    active_channels: Mutex<HashMap<u64, u64>>,
    /// Engagements currently executing (peak tracked in
    /// `ins.peak_engagements`).
    active_engagements: AtomicUsize,
    /// The server's metrics registry; `serving.*` and `gate.*` instruments
    /// live here, `io.*` in the scheduler's own
    /// ([`StiServer::metrics_snapshot`] merges both).
    registry: MetricsRegistry,
    /// Handles resolved from `registry` at build.
    ins: ServingInstruments,
    /// Live span sink (admission instants here, host-track dispatch spans
    /// via the scheduler); defaults to [`ObsSink::Null`].
    obs: Mutex<ObsSink>,
    /// Contended-track records, one per executed engagement.
    engagement_log: Mutex<Vec<EngagementRecord>>,
    /// Backpressure-gate decisions, one per gated engagement.
    gate_log: Mutex<Vec<GateDecision>>,
    /// The Markov prefetch runtime (`None` with prefetch off — the
    /// completion path then pays a single branch).
    prefetch: Option<PrefetchState>,
}

impl ServerInner {
    fn plan_key(&self, target: SimTime, preload_budget: u64) -> PlanKey {
        let model = format!("{}@g{}", self.fingerprint, self.generation.load(Ordering::SeqCst));
        PlanKey::new(model, target, preload_budget, &self.widths, &self.bitwidths)
    }

    /// Resolves (plan, preload buffer) for a knob combination through both
    /// caches, planning and filling at most once per combination.
    fn resolve(
        &self,
        target: SimTime,
        preload_budget: u64,
    ) -> Result<(Arc<ExecutionPlan>, Arc<PreloadBuffer>), PipelineError> {
        let key = self.plan_key(target, preload_budget);
        let plan = self.plan_cache.get_or_plan(&key, || {
            plan_two_stage(
                &self.hw,
                &self.importance.read(),
                target,
                preload_budget,
                &self.widths,
                &self.bitwidths,
            )
        });
        let buffer = self.preload_for(key, &plan)?;
        Ok((plan, buffer))
    }

    /// Resolves the buffer a plan's preload set needs, filling and caching
    /// it under `key` at most once.
    fn preload_for(
        &self,
        key: PlanKey,
        plan: &ExecutionPlan,
    ) -> Result<Arc<PreloadBuffer>, PipelineError> {
        if let Some(buffer) = self.preloads.lock().get(&key).cloned() {
            return Ok(buffer);
        }
        // Fill outside the map lock: preload fills read the (cached) store,
        // and sessions resolving other knob sets must not wait behind that.
        let mut buffer = PreloadBuffer::new(plan.preload_budget_bytes);
        for &(id, bw) in &plan.preload {
            let blob = self.cached_source.load(ShardKey::new(id, bw))?;
            buffer.insert(id, blob)?;
        }
        let buffer = Arc::new(buffer);
        let mut preloads = self.preloads.lock();
        // First fill wins a race; fills are deterministic, so both are equal.
        Ok(preloads.entry(key).or_insert(buffer).clone())
    }

    /// Resolves the running plan and preload buffer of an SLO-search
    /// outcome. When the search settled on the default byte-prefix plan
    /// (always, under [`PreloadPolicy::PerSession`]), this is the ordinary
    /// shared resolution; a mix-aware `|S|` placement instead keys its
    /// buffer by the placement itself, so sessions planned against the
    /// same mix still share one buffer.
    fn resolve_serving(
        &self,
        served: &ServingPlan,
        preload_budget: u64,
    ) -> Result<(Arc<ExecutionPlan>, Arc<PreloadBuffer>), PipelineError> {
        let key = self.plan_key(served.target, preload_budget);
        let default_plan = self.plan_cache.get_or_plan(&key, || {
            plan_two_stage(
                &self.hw,
                &self.importance.read(),
                served.target,
                preload_budget,
                &self.widths,
                &self.bitwidths,
            )
        });
        // `preload_bytes_reallocated == 0` means the search settled on the
        // default placement: resolve through the shared knob caches (and if
        // an importance reprofile raced the search, the freshly resolved
        // plan is the correct one to run, exactly as before). The default
        // buffer is filled only on this path — a winning mix placement
        // must not pay for (and pin) a prefix buffer nobody runs.
        if served.preload_bytes_reallocated == 0 || *default_plan == served.plan {
            let buffer = self.preload_for(key, &default_plan)?;
            return Ok((default_plan, buffer));
        }
        let placement = {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            for pl in &served.plan.layers {
                pl.layer.hash(&mut h);
                for (slice, bw) in pl.items() {
                    (slice, bw.bits()).hash(&mut h);
                }
            }
            for &(id, bw) in &served.plan.preload {
                (id.layer, id.slice, bw.bits()).hash(&mut h);
            }
            h.finish()
        };
        let mut key = key;
        key.model = format!("{}#mix{placement:016x}", key.model);
        let plan = Arc::new(served.plan.clone());
        let buffer = self.preload_for(key, &plan)?;
        Ok((plan, buffer))
    }

    /// Registers (or refreshes, after a retarget or `set_arrival`) a
    /// session's streaming IO load — at its arrival offset — in the live
    /// registry mix that admission and the backpressure gate predict
    /// against. SLO sessions also register their gate profile. An in-place
    /// upsert: the mix's rolling digest updates in O(1), nothing else is
    /// rehashed. `stripe` is the session's device-channel stripe offset
    /// (the SLO search's placement choice for SLO sessions, the
    /// round-robin default for plain ones; always zero on a
    /// single-channel device): it is folded into the registered job
    /// signatures, so every contended prediction routes — and batches —
    /// this session's jobs on the device channels it actually streams
    /// through.
    fn register_load(
        &self,
        token: u64,
        plan: &ExecutionPlan,
        arrival: SimTime,
        slo: Option<SimTime>,
        stripe: u16,
    ) {
        let load = CoRunnerLoad::from_plan_striped(&self.hw, plan, arrival, stripe);
        let slo = slo.map(|slo| SloProfile::from_plan_striped(&self.hw, plan, slo, stripe));
        self.live_mix.upsert(token, load, slo);
    }

    /// The default device-channel stripe for a session without an SLO
    /// placement: round-robin by session token, so a uniform fleet spreads
    /// across the device's channels instead of piling its (byte-identical)
    /// request stream onto whichever channel its signatures hash to.
    /// Always zero on a single-channel device — plain sessions there are
    /// bit-identical to the pre-topology server.
    fn default_stripe(&self, token: u64) -> u16 {
        (token % self.scheduler.topology().channel_count() as u64) as u16
    }

    /// A view of the live registry mix — the one input every contended
    /// prediction (admission, gate, retarget) runs against — optionally
    /// excluding one session (a retargeting session does not co-run with
    /// itself). The merge copies `Arc`-shared job slices (pointer work, no
    /// jobs), and the `exclude` case is an O(log n) remove from the view
    /// with an O(1) digest update — not a registry rebuild.
    fn mix(&self, exclude: Option<u64>) -> ServingMix {
        self.live_mix.merged_excluding(exclude)
    }
}

/// A multi-session serving runtime: owns the model and every shareable
/// resource, hands out [`Session`]s.
pub struct StiServer {
    inner: Arc<ServerInner>,
}

impl StiServer {
    /// Starts building a server for a model whose shards live in `source`,
    /// on a device described by `hw`/`flash`, with shard importance already
    /// profiled (one-time, per model, §3.2).
    pub fn builder(
        model: Model,
        source: Arc<dyn ShardSource>,
        hw: HwProfile,
        flash: FlashModel,
        importance: ImportanceProfile,
    ) -> StiServerBuilder {
        let widths = dynabert_widths_for(model.config().heads);
        StiServerBuilder {
            model,
            source,
            hw,
            flash,
            importance,
            default_target: SimTime::from_ms(200),
            default_preload_budget: 1 << 20,
            bitwidths: Bitwidth::ALL.to_vec(),
            widths,
            throttle_scale: 0.0,
            io_workers: 1,
            shard_cache_bytes: 4 << 20,
            admission: AdmissionMode::Disabled,
            dram: None,
            batch: BatchPolicy::Off,
            backpressure: BackpressureMode::Off,
            plan_sharing: PreloadPolicy::PerSession,
            topology: DeviceTopology::single(),
            prefetch: PrefetchConfig::default(),
        }
    }

    /// Opens a session with the server's default knobs.
    ///
    /// # Errors
    ///
    /// Fails if preload shards cannot be loaded from the store.
    pub fn session(&self) -> Result<Session, PipelineError> {
        self.session_with(self.inner.default_target, self.inner.default_preload_budget)
    }

    /// Opens a session with explicit knobs. The plan and preload buffer are
    /// resolved through the shared caches: the first session with a given
    /// knob combination plans and fills, later ones attach for free.
    ///
    /// # Errors
    ///
    /// Fails if preload shards cannot be loaded from the store.
    pub fn session_with(
        &self,
        target: SimTime,
        preload_budget: u64,
    ) -> Result<Session, PipelineError> {
        let (plan, preload) = self.inner.resolve(target, preload_budget)?;
        let token = self.inner.next_session_token.fetch_add(1, Ordering::SeqCst);
        let stripe = self.inner.default_stripe(token);
        self.inner.register_load(token, &plan, SimTime::ZERO, None, stripe);
        self.inner.open_sessions.fetch_add(1, Ordering::SeqCst);
        Ok(Session {
            inner: self.inner.clone(),
            token,
            target,
            preload_budget,
            arrival: SimTime::ZERO,
            plan,
            preload,
            slo: None,
            serving: None,
            realloc_bytes: 0,
            stripe,
            gate_memo: Mutex::new(None),
            issue_gap: SimTime::ZERO,
            engagement_seq: AtomicU64::new(0),
        })
    }

    /// Opens `count` sessions with uniform knobs in one call. The knobs
    /// are resolved through the plan/preload caches **once**, so pooled
    /// fleet bring-up pays the caches' global locks per *batch* instead of
    /// per open — the per-open path touches only the token counter and the
    /// sharded open-session registry, which admits parallel batches.
    /// Equivalent to `count` calls to [`StiServer::session_with`]: the
    /// registry fold is commutative, so the resulting digest (and every
    /// gate decision derived from it) is identical either way.
    ///
    /// # Errors
    ///
    /// Fails if preload shards cannot be loaded from the store.
    pub fn open_fleet(
        &self,
        count: usize,
        target: SimTime,
        preload_budget: u64,
    ) -> Result<Vec<Session>, PipelineError> {
        let (plan, preload) = self.inner.resolve(target, preload_budget)?;
        Ok((0..count)
            .map(|_| {
                let token = self.inner.next_session_token.fetch_add(1, Ordering::SeqCst);
                let stripe = self.inner.default_stripe(token);
                self.inner.register_load(token, &plan, SimTime::ZERO, None, stripe);
                self.inner.open_sessions.fetch_add(1, Ordering::SeqCst);
                Session {
                    inner: self.inner.clone(),
                    token,
                    target,
                    preload_budget,
                    arrival: SimTime::ZERO,
                    plan: plan.clone(),
                    preload: preload.clone(),
                    slo: None,
                    serving: None,
                    realloc_bytes: 0,
                    stripe,
                    gate_memo: Mutex::new(None),
                    issue_gap: SimTime::ZERO,
                    engagement_seq: AtomicU64::new(0),
                }
            })
            .collect())
    }

    /// Opens a session planned against a latency **SLO** instead of a raw
    /// target: the serving planner searches `(T, |S|)` so the session's
    /// *contended* latency — predicted by the flash-queue simulator with
    /// the currently open sessions' **actual** streaming loads as
    /// co-runners, under the server's shared-IO batching mode — meets
    /// `slo`. Search results are memoized per `(knobs, co-runner mix,
    /// sharing)`.
    ///
    /// # Errors
    ///
    /// Fails with [`PipelineError::AdmissionRejected`] when the server's
    /// admission mode is [`AdmissionMode::Enforce`] and even the best plan
    /// misses the SLO under the predicted contention; otherwise fails only
    /// if preload shards cannot be loaded.
    pub fn session_with_slo(
        &self,
        slo: SimTime,
        preload_budget: u64,
    ) -> Result<Session, PipelineError> {
        self.session_with_slo_at(slo, preload_budget, SimTime::ZERO)
    }

    /// [`StiServer::session_with_slo`] for a session arriving at `arrival`
    /// on the simulated timeline (a trace file's `arrival_us`): the
    /// admission prediction queues the candidate's requests at its real
    /// arrival against each open session's real arrival, so an open
    /// straggler whose window does not overlap no longer counts against
    /// the candidate. The session opens with its arrival already set.
    ///
    /// # Errors
    ///
    /// As [`StiServer::session_with_slo`].
    pub fn session_with_slo_at(
        &self,
        slo: SimTime,
        preload_budget: u64,
        arrival: SimTime,
    ) -> Result<Session, PipelineError> {
        let inner = &*self.inner;
        // SLO opens serialize on this gate so the co-runner mix cannot
        // change between the admission check and the open-session
        // registration: two racing SLO opens can never both admit against a
        // mix that excludes the other. Plain `session_with` opens are
        // not gated — they are admitted unconditionally by design, so a
        // racing plain open is indistinguishable from one that lands just
        // after admission.
        let _admission = inner.admission_gate.lock();
        let mix = inner.mix(None);
        let co_runners = mix.co_runners();
        let key = ServingPlanKey::for_mix(
            inner.plan_key(slo, preload_budget),
            arrival,
            &mix,
            inner.plan_sharing,
        );
        let served = inner.slo_cache.get_or_plan(&key, || {
            plan_for_slo_mix(
                &inner.hw,
                &inner.importance.read(),
                slo,
                arrival,
                &mix,
                inner.plan_sharing,
                preload_budget,
                &inner.widths,
                &inner.bitwidths,
            )
        });
        if !served.meets_slo {
            match inner.admission {
                AdmissionMode::Enforce => {
                    inner.ins.rejected_sessions.incr();
                    // The token this session would have taken — stable
                    // (opens serialize on the admission gate), so the
                    // span track is deterministic across replays.
                    let token = inner.next_session_token.load(Ordering::SeqCst);
                    inner.obs.lock().span(
                        SpanEvent::instant(
                            TrackKind::Session,
                            token,
                            "admission.reject",
                            arrival.as_us(),
                        )
                        .with_args(
                            SpanArgs::new()
                                .with("predicted_us", served.predicted_contended.as_us())
                                .with("slo_us", slo.as_us())
                                .with("co_runners", co_runners as u64),
                        ),
                    );
                    return Err(PipelineError::AdmissionRejected {
                        predicted: served.predicted_contended,
                        slo,
                        co_runners,
                    });
                }
                AdmissionMode::Monitor => inner.ins.monitor_violations.incr(),
                AdmissionMode::Disabled => {}
            }
        }
        // The search's chosen plan is what the session runs. For the
        // default placement this resolves through the shared knob caches
        // (replanning agrees with the search — unless an importance
        // reprofile raced in between, in which case the freshly resolved
        // plan is the correct one to run); a mix-aware placement resolves
        // its own buffer, shared per placement.
        let (plan, preload) = inner.resolve_serving(&served, preload_budget)?;
        let token = inner.next_session_token.fetch_add(1, Ordering::SeqCst);
        inner.register_load(token, &plan, arrival, Some(slo), served.stripe);
        inner.ins.admitted_sessions.incr();
        inner.ins.preload_bytes_reallocated.add(served.preload_bytes_reallocated);
        inner.obs.lock().span(
            SpanEvent::instant(TrackKind::Session, token, "admission.admit", arrival.as_us())
                .with_args(
                    SpanArgs::new()
                        .with("predicted_us", served.predicted_contended.as_us())
                        .with("slo_us", slo.as_us())
                        .with("co_runners", co_runners as u64),
                ),
        );
        inner.open_sessions.fetch_add(1, Ordering::SeqCst);
        Ok(Session {
            inner: self.inner.clone(),
            token,
            target: served.target,
            preload_budget,
            arrival,
            plan,
            preload,
            slo: Some(slo),
            serving: Some(served.clone()),
            realloc_bytes: served.preload_bytes_reallocated,
            stripe: served.stripe,
            gate_memo: Mutex::new(None),
            issue_gap: SimTime::ZERO,
            engagement_seq: AtomicU64::new(0),
        })
    }

    /// The model's resident parameters in bytes (shared across all
    /// sessions, unlike per-engine copies).
    pub fn resident_bytes(&self) -> usize {
        self.inner.model.resident_byte_size()
    }

    /// Plan-cache effectiveness counters.
    pub fn plan_stats(&self) -> PlanCacheStats {
        self.inner.plan_cache.stats()
    }

    /// Shard-cache effectiveness counters.
    pub fn shard_stats(&self) -> ShardCacheStats {
        self.inner.shard_cache.stats()
    }

    /// IO-scheduler accounting (requests, bytes, simulated flash busy time,
    /// observed queue depth, batching counters).
    pub fn io_stats(&self) -> IoSchedulerStats {
        self.inner.scheduler.stats()
    }

    /// The shared-IO batching policy this server runs.
    pub fn batch_policy(&self) -> BatchPolicy {
        self.inner.batch
    }

    /// Quiesces the IO scheduler: engagements keep queuing layer requests
    /// but nothing dispatches until [`StiServer::resume_io`]. Tests and
    /// benches use the pair to queue a whole co-resident workload and
    /// release it in one burst, making batching fan-outs deterministic.
    pub fn pause_io(&self) {
        self.inner.scheduler.pause_dispatch();
    }

    /// Releases a [`StiServer::pause_io`].
    pub fn resume_io(&self) {
        self.inner.scheduler.resume_dispatch();
    }

    /// Layer requests currently queued (and not in flight) in the IO
    /// scheduler — poll this while paused to know a workload is fully
    /// submitted.
    pub fn queued_io_requests(&self) -> usize {
        self.inner.scheduler.queued_requests()
    }

    /// Services the IO queue dry on the calling thread, returning the
    /// number of dispatches run ([`IoScheduler::drive_queued`]). The
    /// event-driven executor pairs this with [`StiServer::pause_io`]: the
    /// worker pool stays parked while the simulated clock's flash component
    /// *is* the dispatcher, so dispatch order is a pure function of the
    /// queue contents.
    pub fn drive_io(&self) -> usize {
        self.inner.scheduler.drive_queued()
    }

    /// [`StiServer::drive_io`] restricted to one device channel
    /// ([`IoScheduler::drive_queued_on`]): the event-driven executor hosts
    /// one flash [`Component`](sti_device::engine::Component) per device
    /// channel, each servicing only the requests placed on its own
    /// channel.
    pub fn drive_io_on(&self, device_channel: u16) -> usize {
        self.inner.scheduler.drive_queued_on(device_channel)
    }

    /// The simulated flash topology this server's scheduler places
    /// requests onto.
    pub fn device_topology(&self) -> DeviceTopology {
        self.inner.scheduler.topology()
    }

    /// Number of distinct knob combinations currently planned.
    pub fn cached_plans(&self) -> usize {
        self.inner.plan_cache.len()
    }

    /// Admission and engagement counters, reconstructed from the server's
    /// named instruments (the instruments are the source of truth; this
    /// struct is the stable report shape).
    pub fn serving_stats(&self) -> ServingStats {
        let ins = &self.inner.ins;
        ServingStats {
            admitted_sessions: ins.admitted_sessions.get(),
            rejected_sessions: ins.rejected_sessions.get(),
            monitor_violations: ins.monitor_violations.get(),
            engagements: ins.engagements.get(),
            peak_concurrent_engagements: ins.peak_engagements.max() as usize,
            shed_engagements: ins.shed_engagements.get(),
            queued_engagements: ins.queued_engagements.get(),
            preload_bytes_reallocated: ins.preload_bytes_reallocated.get(),
        }
    }

    /// A merged snapshot of every instrument the serving path maintains:
    /// the server's `serving.*`/`gate.*` registry folded with the IO
    /// scheduler's `io.*` registry (disjoint prefixes, lossless merge).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        // `prefetch.*` gauges materialize lazily, at snapshot time, and
        // only when the prefetcher runs — an off-mode server exports no
        // prefetch series at all.
        if self.inner.prefetch.is_some() {
            let pool = self.inner.shard_cache.prefetch_stats();
            let spec = self.inner.scheduler.speculative_events();
            let registry = &self.inner.registry;
            registry.gauge("prefetch.hit_bytes").set(pool.hit_bytes);
            registry
                .gauge("prefetch.speculated_bytes")
                .set(spec.iter().map(|e| e.bytes).sum::<u64>());
            registry.gauge("prefetch.evictions").set(pool.evictions);
            registry.gauge("prefetch.hit_rate_pct").set((pool.hit_rate() * 100.0).round() as u64);
        }
        let mut snap = self.inner.registry.snapshot();
        snap.merge(&self.inner.scheduler.metrics_snapshot());
        snap
    }

    /// Routes live spans (admission instants, host-track scheduler
    /// dispatch spans) to `sink`, and shares it with the IO scheduler.
    /// The deterministic span stream is assembled separately by
    /// [`StiServer::trace_spans`]; the live sink only adds color for
    /// single-run inspection.
    pub fn set_obs_sink(&self, sink: ObsSink) {
        self.inner.scheduler.set_obs_sink(sink.clone());
        *self.inner.obs.lock() = sink;
    }

    /// The live span sink currently installed (shares the ring with the
    /// server; [`ObsSink::Null`] when tracing is off). Replay harnesses
    /// hand this to the event engine so engine-track spans land in the
    /// same stream.
    pub fn obs_sink(&self) -> ObsSink {
        self.inner.obs.lock().clone()
    }

    /// Assembles the virtual-clock span stream for everything served so
    /// far. The deterministic tracks are a pure function of the
    /// engagement, gate, and dispatch logs, so `--exec threaded` and
    /// `--exec event` replays of one trace produce identical streams (the
    /// `sti-obs` determinism contract):
    ///
    /// * [`TrackKind::Session`] — one `engagement` interval per executed
    ///   engagement (issue → contended completion, replaying the same
    ///   recurrence as [`StiServer::contention_report`]), plus one
    ///   `gate.admit` / `gate.delay` / `gate.shed` event per gate decision
    ///   carrying the deciding [`GateReason`] digest and dominant lane.
    /// * [`TrackKind::Flash`] — one track per *device channel*: each
    ///   channel's `flash.wait` / `flash.service` / `flash.depth` timeline
    ///   from a canonical replay of the dispatch log (a single track on
    ///   the default single-channel topology).
    ///
    /// Scheduler channel ids are assigned racily under the threaded
    /// executor, so dispatch events are first remapped onto stable
    /// engagement ids (`session << 16 | per-session index` — chronological
    /// because a session runs its engagements serially) and re-sorted by
    /// `(arrival, stable id)`, an order both executors agree on, before
    /// the flash replay. The stable sort only reorders across channels;
    /// per-channel FIFO is preserved.
    ///
    /// Whatever the live [`ObsSink`] has buffered (admission markers,
    /// host-track dispatch spans) is drained and appended for single-run
    /// inspection; [`TrackFilter::Deterministic`](sti_obs::TrackFilter)
    /// keeps host/engine tracks out of deterministic exports. The result
    /// is sorted by the canonical span key.
    pub fn trace_spans(&self) -> Vec<SpanEvent> {
        let inner = &*self.inner;
        let log = inner.engagement_log.lock();
        // Stable engagement ids: scheduler channel -> session<<16 | index.
        let mut next_index: HashMap<u64, u64> = HashMap::new();
        let mut stable: HashMap<u64, u64> = HashMap::new();
        for rec in log.iter() {
            let idx = next_index.entry(rec.session).or_insert(0);
            stable.insert(rec.channel, (rec.session << 16) | *idx);
            *idx += 1;
        }
        // Canonical flash replay over stable ids.
        let mut events = inner.scheduler.flash_events();
        for e in &mut events {
            e.channel = stable.get(&e.channel).copied().unwrap_or(u64::MAX);
            for m in &mut e.members {
                *m = stable.get(m).copied().unwrap_or(u64::MAX);
            }
        }
        events.sort_by_key(|e| (e.arrival, e.channel));
        let report = IoScheduler::topology_sim_from_events(
            &events,
            inner.flash,
            inner.dram,
            inner.scheduler.topology(),
        )
        .run();
        let completions = report.completions();
        let ring = ObsSink::ring((completions.len() * 4 + 64) * std::mem::size_of::<SpanEvent>());
        report.emit_spans(&ring);
        let (mut spans, _) = ring.drain();
        // Session-track engagement intervals: the same per-session issue
        // clock as the contention report, joined on stable ids.
        let mut per_engagement: HashMap<u64, Vec<sti_device::CompletedJob>> = HashMap::new();
        for job in &completions {
            per_engagement.entry(job.engagement).or_default().push(*job);
        }
        let mut session_clock: HashMap<u64, SimTime> = HashMap::new();
        let mut index: HashMap<u64, u64> = HashMap::new();
        for rec in log.iter() {
            let idx = index.entry(rec.session).or_insert(0);
            let key = (rec.session << 16) | *idx;
            *idx += 1;
            let jobs = per_engagement.get(&key).map(Vec::as_slice).unwrap_or(&[]);
            let io_ends = match align_io_completions(&rec.layer_has_io, jobs) {
                Some(ends) => ends,
                None => continue,
            };
            let issue =
                rec.issue.max(session_clock.get(&rec.session).copied().unwrap_or(SimTime::ZERO));
            let start = jobs.first().map_or(issue, |j| j.start);
            let comps = vec![rec.comp; rec.layer_has_io.len()];
            let contended = contended_makespan(start, &io_ends, &comps);
            session_clock.insert(rec.session, start + contended);
            spans.push(
                SpanEvent::complete(
                    TrackKind::Session,
                    rec.session,
                    "engagement",
                    issue.as_us(),
                    (start + contended).as_us(),
                )
                .with_args(
                    SpanArgs::new()
                        .with("engagement", key)
                        .with("uncontended_us", rec.uncontended.as_us())
                        .with("slo_us", rec.slo.map_or(0, |s| s.as_us())),
                ),
            );
        }
        drop(log);
        // Gate decisions as session-track markers carrying the reason.
        for d in inner.gate_log.lock().iter() {
            let args = SpanArgs::new()
                .with("digest", d.reason.digest)
                .with("predicted_us", d.predicted.as_us())
                .with("backlog_bytes", d.reason.backlog_bytes)
                .with("dominant", d.reason.dominant_lane.map_or(u64::MAX, |(t, _)| t));
            let span = if d.shed {
                SpanEvent::instant(TrackKind::Session, d.session, "gate.shed", d.arrival.as_us())
            } else if d.delay > SimTime::ZERO {
                SpanEvent::complete(
                    TrackKind::Session,
                    d.session,
                    "gate.delay",
                    d.arrival.as_us(),
                    (d.arrival + d.delay).as_us(),
                )
            } else {
                SpanEvent::instant(TrackKind::Session, d.session, "gate.admit", d.arrival.as_us())
            };
            spans.push(span.with_args(args));
        }
        // Speculative staging windows, one track per device channel.
        // Whether a staged shard was flash-loaded or pinned depends on
        // cache residency at execution time, so the track is outside the
        // determinism contract ([`TrackKind::Prefetch`]) and deterministic
        // exports drop it.
        for e in inner.scheduler.speculative_events() {
            spans.push(
                SpanEvent::complete(
                    TrackKind::Prefetch,
                    e.device_channel as u64,
                    "prefetch.stage",
                    e.arrival.as_us(),
                    (e.arrival + e.io_delay).as_us(),
                )
                .with_args(
                    SpanArgs::new()
                        .with("session", e.channel)
                        .with("bytes", e.bytes)
                        .with("pinned_bytes", e.hit_bytes),
                ),
            );
        }
        // Live-sink color (admission markers, host-track dispatch spans).
        let (live, _) = inner.obs.lock().drain();
        spans.extend(live);
        spans.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        spans
    }

    /// SLO-search memo counters (hits mean a session reused a search done
    /// for the same knobs and co-runner count).
    pub fn slo_plan_stats(&self) -> PlanCacheStats {
        self.inner.slo_cache.stats()
    }

    /// Sessions currently open (the co-runner count the next SLO admission
    /// will plan against).
    pub fn open_sessions(&self) -> usize {
        self.inner.open_sessions.load(Ordering::SeqCst)
    }

    /// The live registry mix's rolling digest — the identity the SLO-plan
    /// cache and both gate memos key on. Maintained incrementally
    /// (O(1) per open/close/retarget), so this call costs two words per
    /// registry shard plus a hash of the (empty) backlog, flat in fleet
    /// size; fleet-scale probes use it to measure mix-digest time.
    pub fn mix_digest(&self) -> u64 {
        self.inner.live_mix.digest_with(&BacklogSnapshot::default())
    }

    /// Replays the recorded dispatch sequence through the flash-queue
    /// simulator and reports each executed engagement's contended latency
    /// (plus queue aggregates). Under the opt-in DRAM-residency mode
    /// ([`StiServerBuilder::dram_residency`]), cache-resident bytes are
    /// charged at DRAM service time.
    ///
    /// An engagement's contended latency is measured from its **first flash
    /// service start**: it captures the stretch co-runner jobs interleaved
    /// into its pipeline, not how long ago the server started. Engagements
    /// that ran back-to-back with the queue to themselves report exactly
    /// their uncontended makespan. (Replaying trace-supplied arrival
    /// offsets through [`sti_storage::IoScheduler::channel_at`] so initial
    /// queueing counts too is a roadmap follow-up.)
    ///
    /// The dispatch log grows with every engagement served; long-lived
    /// servers should call [`StiServer::reset_contention_log`] after
    /// harvesting a report.
    pub fn contention_report(&self) -> ContentionReport {
        let inner = &*self.inner;
        let events = inner.scheduler.flash_events();
        let report = IoScheduler::topology_sim_from_events(
            &events,
            inner.flash,
            inner.dram,
            inner.scheduler.topology(),
        )
        .run();
        let mut per_channel: HashMap<u64, Vec<sti_device::CompletedJob>> = HashMap::new();
        for job in report.completions() {
            per_channel.entry(job.engagement).or_default().push(job);
        }
        let log = inner.engagement_log.lock();
        // Per-session issue clock: a session issues its next engagement
        // only once the previous one returned, so each engagement's
        // effective issue is its recorded issue time (arrival + gate
        // delay) advanced past the session's previous contended
        // completion. Whatever gap remains between that issue and the
        // first flash service start is genuine initial queueing —
        // co-runners occupying the channel before the engagement got its
        // first byte — charged in `initial_queueing`/`end_to_end()`.
        let mut session_clock: HashMap<u64, SimTime> = HashMap::new();
        let engagements = log
            .iter()
            .filter_map(|rec| {
                let jobs = per_channel.get(&rec.channel).map(Vec::as_slice).unwrap_or(&[]);
                // `None` on a count mismatch: the engagement errored
                // mid-stream (or its channel was torn down early), so it
                // has no coherent contended timeline.
                let io_ends = align_io_completions(&rec.layer_has_io, jobs)?;
                let issue = rec
                    .issue
                    .max(session_clock.get(&rec.session).copied().unwrap_or(SimTime::ZERO));
                let start = jobs.first().map_or(issue, |j| j.start);
                let comps = vec![rec.comp; rec.layer_has_io.len()];
                let contended = contended_makespan(start, &io_ends, &comps);
                session_clock.insert(rec.session, start + contended);
                Some(EngagementContention {
                    channel: rec.channel,
                    session: rec.session,
                    uncontended: rec.uncontended,
                    contended,
                    issue,
                    initial_queueing: start.saturating_sub(issue),
                    slo: rec.slo,
                })
            })
            .collect();
        // Batch-occupancy accounting straight off the event stream: a
        // batched dispatch appears once, with its fan-out recipients.
        let batched_dispatches = events.iter().filter(|e| e.fanout() > 1).count() as u64;
        let flash_bytes_saved: u64 = events.iter().map(|e| e.bytes * e.members.len() as u64).sum();
        let deliveries: usize = events.iter().map(FlashDispatchEvent::fanout).sum();
        let mean_batch_occupancy =
            if events.is_empty() { 0.0 } else { deliveries as f64 / events.len() as f64 };
        // Gate decisions sorted by session token; each session runs its
        // engagements serially, so the per-session order of the log is
        // already chronological and a stable sort preserves it.
        let mut gate = inner.gate_log.lock().clone();
        gate.sort_by_key(|d| d.session);
        // Speculation is priced strictly after (and against) the demand
        // replay above: background jobs fill the idle windows the demand
        // timeline left on each device channel.
        let prefetch = inner
            .prefetch
            .as_ref()
            .map(|_| price_speculation(&inner.scheduler.speculative_events(), &report));
        ContentionReport {
            engagements,
            flash_busy: report.busy(),
            queue_makespan: report.makespan(),
            max_queue_depth: report.max_depth(),
            batched_dispatches,
            flash_bytes_saved,
            mean_batch_occupancy,
            gate,
            preload_bytes_reallocated: inner.ins.preload_bytes_reallocated.get(),
            prefetch,
        }
    }

    /// Drops the contended-track history (the scheduler's dispatch log, the
    /// per-engagement records, and the gate-decision log) so the next
    /// [`StiServer::contention_report`] starts fresh. The uncontended track
    /// and all counters are untouched.
    pub fn reset_contention_log(&self) {
        self.inner.scheduler.clear_flash_events();
        self.inner.scheduler.clear_speculative_events();
        self.inner.engagement_log.lock().clear();
        self.inner.gate_log.lock().clear();
    }

    /// Whether this server runs a next-engagement prefetcher. Cheap (no
    /// locks) — event-driven hosts use it to decide whether completions
    /// need a follow-up flash wake for speculative work.
    pub fn prefetch_enabled(&self) -> bool {
        self.inner.prefetch.is_some()
    }

    /// The prefetcher's end-to-end counters (`None` with prefetch off):
    /// the Markov model's observation/plan/feedback stats, the staging
    /// pool's hit accounting, and the speculative dispatch totals. The
    /// headline number is `report.pool.hit_rate()` — the fraction of
    /// staged bytes a later demand miss actually consumed.
    pub fn prefetch_report(&self) -> Option<PrefetchReport> {
        let pf = self.inner.prefetch.as_ref()?;
        let spec = self.inner.scheduler.speculative_events();
        Some(PrefetchReport {
            mode: pf.cfg.mode,
            model: pf.model.lock().stats(),
            pool: self.inner.shard_cache.prefetch_stats(),
            jobs: spec.len() as u64,
            speculated_bytes: spec.iter().map(|e| e.bytes).sum(),
            pinned_bytes: spec.iter().map(|e| e.hit_bytes).sum(),
        })
    }

    /// The infer-time backpressure policy this server runs.
    pub fn backpressure(&self) -> BackpressureMode {
        self.inner.backpressure
    }

    /// The `|S|` placement policy this server's SLO searches run under.
    pub fn plan_sharing(&self) -> PreloadPolicy {
        self.inner.plan_sharing
    }

    /// Installs a re-profiled importance table and drops every plan derived
    /// from the old one (via [`StiServer::invalidate_plans`]). Sessions
    /// already open keep their current plan until they change knobs.
    pub fn set_importance(&self, importance: ImportanceProfile) {
        *self.inner.importance.write() = importance;
        self.invalidate_plans();
    }

    /// Drops every cached plan, preload buffer, and cached shard blob,
    /// forcing the next session (or knob change) to replan and re-read.
    /// Called by [`StiServer::set_importance`]; call it directly when the
    /// backing store's blobs were regenerated out-of-band. Sessions already
    /// open keep executing their old plan until they change knobs.
    pub fn invalidate_plans(&self) {
        // Bump the generation *first*: resolutions already in flight then
        // land under a key no future lookup uses, rather than racing the
        // clears below and resurrecting stale state.
        self.inner.generation.fetch_add(1, Ordering::SeqCst);
        self.inner.plan_cache.clear();
        self.inner.slo_cache.clear();
        self.inner.preloads.lock().clear();
        self.inner.shard_cache.clear();
    }
}

impl std::fmt::Debug for StiServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StiServer")
            .field("fingerprint", &self.inner.fingerprint)
            .field("cached_plans", &self.cached_plans())
            .finish()
    }
}

/// One app's handle onto a [`StiServer`]: its latency/memory knobs plus
/// shared references to the resolved plan and preload buffer.
///
/// Sessions are `Send + Sync`; `infer`/`generate` take `&self`, so one
/// session can serve engagements from multiple threads, and many sessions
/// can run concurrently against one server.
pub struct Session {
    inner: Arc<ServerInner>,
    /// Registry token: keys this session's entry in the open-load registry.
    token: u64,
    target: SimTime,
    preload_budget: u64,
    /// Simulated arrival offset of this session's engagements (contended
    /// track only; see [`Session::set_arrival`]).
    arrival: SimTime,
    plan: Arc<ExecutionPlan>,
    preload: Arc<PreloadBuffer>,
    slo: Option<SimTime>,
    serving: Option<Arc<ServingPlan>>,
    /// This session's current contribution to
    /// [`ServingStats::preload_bytes_reallocated`], so a retarget replaces
    /// rather than re-adds it.
    realloc_bytes: u64,
    /// Device-channel stripe offset of this session's shard placement
    /// (the SLO search's placement choice, [`ServingPlan::stripe`]; zero
    /// for raw-target sessions and on single-channel devices). Folded into
    /// registered job signatures and into the IO lane the session's
    /// engagements stream through.
    stripe: u16,
    /// The last backpressure-gate decision, keyed by a digest of the gate's
    /// inputs (candidate arrival, external backlog, open-load registry):
    /// decisions are a pure function of those, so repeat engagements
    /// against an unchanged mix skip the queue simulations.
    gate_memo: Mutex<Option<(u64, GateDecision)>>,
    /// Idle gap between this session's successive engagements on the
    /// simulated timeline (see [`Session::set_issue_gap`]; zero — the
    /// legacy back-to-back issue clock — by default).
    issue_gap: SimTime,
    /// Engagements issued so far — the multiplier on `issue_gap`.
    engagement_seq: AtomicU64,
}

impl Drop for Session {
    fn drop(&mut self) {
        self.inner.live_mix.remove(self.token);
        self.inner.open_sessions.fetch_sub(1, Ordering::SeqCst);
    }
}

/// RAII in-flight counter, decremented even on error paths.
struct ActiveGuard(Arc<ServerInner>);
impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.active_engagements.fetch_sub(1, Ordering::SeqCst);
    }
}

/// RAII session-ownership mark for a scheduler channel (see
/// [`Session::infer_issue`]): removed from `active_channels` when the
/// engagement finishes or errors out.
struct ChannelGuard(Arc<ServerInner>, u64);
impl Drop for ChannelGuard {
    fn drop(&mut self) {
        self.0.active_channels.lock().remove(&self.1);
    }
}

/// An engagement whose IO requests are enqueued on the shared scheduler
/// but whose layers have not been received yet — the hand-off between
/// [`Session::infer_issue`] and [`Session::infer_complete`].
///
/// Owns the engagement's IO lane and its in-flight accounting (RAII), so
/// dropping a pending engagement without completing it cleans up exactly
/// like an errored `infer` — the channel is torn down and the counters
/// settle. The type is opaque: its only use is to be handed back to
/// `infer_complete` on the session that issued it.
pub struct PendingEngagement {
    channel: IoChannel,
    /// Per-layer: whether the issue half enqueued a request for the layer
    /// (false = fully preloaded), so the complete half receives exactly
    /// what was requested.
    has_request: Vec<bool>,
    /// The engagement's effective issue time: session arrival advanced by
    /// the per-engagement issue gap, plus the gate delay — the tick its
    /// scheduler channel opened at.
    issue: SimTime,
    tokens: Vec<u32>,
    _active: ActiveGuard,
    _channel: ChannelGuard,
}

impl Session {
    /// The session's registry token: the key under which its load sits in
    /// the sharded open-session registry (and in every mix digest).
    pub fn token(&self) -> u64 {
        self.token
    }

    /// The session's execution plan.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// The session's target latency.
    pub fn target(&self) -> SimTime {
        self.target
    }

    /// The latency SLO this session was admitted under, if it was opened
    /// with [`StiServer::session_with_slo`].
    pub fn slo(&self) -> Option<SimTime> {
        self.slo
    }

    /// The SLO search outcome (chosen `(T, |S|)`, predicted contended
    /// latency, co-runner count), when SLO-planned.
    pub fn serving_plan(&self) -> Option<&ServingPlan> {
        self.serving.as_deref()
    }

    /// Bytes held by the (shared) preload buffer this session executes
    /// against.
    pub fn preload_used(&self) -> u64 {
        self.preload.used_bytes()
    }

    /// The session's simulated arrival offset.
    pub fn arrival(&self) -> SimTime {
        self.arrival
    }

    /// Sets the session's simulated arrival offset — typically from a trace
    /// file's `arrival_us`. Engagements stream through a scheduler channel
    /// opened at this time, so the contended track queues them at their
    /// real arrival (instead of all-zero) and shared-IO batching only
    /// coalesces sessions whose arrivals fall inside the batch window. The
    /// open-load registry entry is refreshed, so admission and the
    /// backpressure gate price this session at its real offset. The
    /// uncontended (deterministic) track is unaffected.
    pub fn set_arrival(&mut self, arrival: SimTime) {
        self.arrival = arrival;
        self.inner.register_load(self.token, &self.plan, arrival, self.slo, self.stripe);
    }

    /// Sets the idle gap between this session's successive engagements on
    /// the simulated timeline — typically from a trace file's `idle_us`.
    /// The `n`-th engagement's scheduler channel then opens at
    /// `arrival + n · gap` (plus any gate delay) instead of at the bare
    /// session arrival, so the contended replay sees the per-channel idle
    /// windows a think-time workload really has — the windows speculative
    /// prefetch jobs run in. Contended track only: the registry entry
    /// (and with it every admission and gate decision) still prices the
    /// session at its arrival, and the uncontended results are untouched.
    /// Zero (the default) reproduces the legacy back-to-back issue clock
    /// bit-identically.
    pub fn set_issue_gap(&mut self, gap: SimTime) {
        self.issue_gap = gap;
    }

    /// Retargets the session: resolves the plan for the new `T` through the
    /// shared caches (replanning only if no session used these knobs
    /// before, §3.2). An SLO-planned session reverts to raw-target mode.
    ///
    /// # Errors
    ///
    /// Fails if new preload shards cannot be loaded.
    pub fn set_target(&mut self, target: SimTime) -> Result<(), PipelineError> {
        let (plan, preload) = self.inner.resolve(target, self.preload_budget)?;
        self.target = target;
        self.plan = plan;
        self.preload = preload;
        self.slo = None;
        self.serving = None;
        self.stripe = self.inner.default_stripe(self.token);
        self.inner.register_load(self.token, &self.plan, self.arrival, None, self.stripe);
        Ok(())
    }

    /// Changes the session's preload budget `|S|`, resolving through the
    /// shared caches like [`Session::set_target`]. An SLO-planned session
    /// reverts to raw-target mode.
    ///
    /// # Errors
    ///
    /// Fails if new preload shards cannot be loaded.
    pub fn set_preload_budget(&mut self, bytes: u64) -> Result<(), PipelineError> {
        let (plan, preload) = self.inner.resolve(self.target, bytes)?;
        self.preload_budget = bytes;
        self.plan = plan;
        self.preload = preload;
        self.slo = None;
        self.serving = None;
        self.stripe = self.inner.default_stripe(self.token);
        self.inner.register_load(self.token, &self.plan, self.arrival, None, self.stripe);
        Ok(())
    }

    /// Re-plans the session against a latency SLO and the **current** mix:
    /// like [`StiServer::session_with_slo_at`], but in place — the search
    /// builds a [`ServingMix`] of every *other* open session (a session
    /// does not co-run with itself) and the session adopts the winning
    /// `(T, |S|)` placement, re-registering its load. Use it when a
    /// session's SLO changes mid-life, or to refresh a stale SLO plan
    /// after the mix shifted.
    ///
    /// # Errors
    ///
    /// Fails with [`PipelineError::AdmissionRejected`] under
    /// [`AdmissionMode::Enforce`] when even the best plan misses (the
    /// session then keeps its current plan), or if preload shards cannot
    /// be loaded.
    pub fn retarget_slo(&mut self, slo: SimTime) -> Result<(), PipelineError> {
        let inner = self.inner.clone();
        let _admission = inner.admission_gate.lock();
        let mix = inner.mix(Some(self.token));
        let co_runners = mix.co_runners();
        let key = ServingPlanKey::for_mix(
            inner.plan_key(slo, self.preload_budget),
            self.arrival,
            &mix,
            inner.plan_sharing,
        );
        let served = inner.slo_cache.get_or_plan(&key, || {
            plan_for_slo_mix(
                &inner.hw,
                &inner.importance.read(),
                slo,
                self.arrival,
                &mix,
                inner.plan_sharing,
                self.preload_budget,
                &inner.widths,
                &inner.bitwidths,
            )
        });
        if !served.meets_slo {
            match inner.admission {
                AdmissionMode::Enforce => {
                    return Err(PipelineError::AdmissionRejected {
                        predicted: served.predicted_contended,
                        slo,
                        co_runners,
                    });
                }
                AdmissionMode::Monitor => inner.ins.monitor_violations.incr(),
                AdmissionMode::Disabled => {}
            }
        }
        let (plan, preload) = inner.resolve_serving(&served, self.preload_budget)?;
        // Replace (not re-add) this session's contribution: the gauge
        // tracks bytes moved by sessions' *current* placements.
        inner.ins.preload_bytes_reallocated.sub(self.realloc_bytes);
        inner.ins.preload_bytes_reallocated.add(served.preload_bytes_reallocated);
        self.realloc_bytes = served.preload_bytes_reallocated;
        self.target = served.target;
        self.plan = plan;
        self.preload = preload;
        self.slo = Some(slo);
        self.stripe = served.stripe;
        self.serving = Some(served);
        inner.register_load(self.token, &self.plan, self.arrival, Some(slo), self.stripe);
        Ok(())
    }

    /// Runs the infer-time backpressure gate for one engagement of this
    /// session, returning the decision (`None` when the gate is off or the
    /// session carries no SLO).
    ///
    /// **Determinism.** Gate decisions must be identical between concurrent
    /// and sequential replays of the same trace, so co-resident sessions
    /// are priced from the open-session registry — populated
    /// deterministically at session open — rather than from their racy live
    /// queue entries. The server builds a [`ServingMix`] of the registry
    /// plus whatever *external* backlog remains once channels owned by
    /// registered sessions are excluded (the registry already prices
    /// those), and [`ServingMix::gate_all`] runs the deterministic walk:
    /// sessions in `(arrival, token)` order, each earlier SLO session's
    /// decision replayed, equal-arrival later tokens excluded on the first
    /// pass and re-gated against on the second (queue mode). Decisions are
    /// memoized per mix digest — the same identity the SLO-plan cache
    /// keys on — at two levels: per session (repeat engagements against
    /// an unchanged mix skip everything) and per *walk*
    /// (`ServerInner::gate_walk_memo`): one walk prices every open SLO
    /// session, so after a registry change exactly one engagement
    /// re-simulates and every other session's first decision is a lookup.
    /// On a memo hit the live mix is never cloned — the rolling digest
    /// (O(backlog), flat in fleet size) is the whole cost.
    fn gate(&self) -> Option<GateDecision> {
        let inner = &*self.inner;
        let policy = match inner.backpressure {
            BackpressureMode::Off => return None,
            BackpressureMode::Queue(max) => GatePolicy::Queue(max),
            BackpressureMode::Shed => GatePolicy::Shed,
        };
        let slo = self.slo?;
        // Start from the live queue, minus channels the registry prices.
        // The snapshot is taken under the ownership lock so a channel can
        // never be observed live before its owning session registered it
        // (infer creates channels under the same lock) — otherwise a racing
        // gate would double-count that session.
        let (owned, live): (HashSet<u64>, BacklogSnapshot) = {
            let active = inner.active_channels.lock();
            (active.keys().copied().collect(), inner.scheduler.backlog_snapshot())
        };
        let external = BacklogSnapshot {
            channels: live.channels.into_iter().filter(|c| !owned.contains(&c.channel)).collect(),
            batch_window: live.batch_window,
        };
        // The decision is a pure function of the mix. Memo hits pay only
        // the sharded digest probe (two words per shard, no merge); on a
        // miss the registry is re-snapshotted under *all* shard locks
        // ([`ShardedRegistry::snapshot_with`]), so the digest the walk is
        // memoized under is computed from exactly the state the walk saw —
        // a torn probe digest can miss the memo (and re-walk), never
        // resurrect a stale walk for current state.
        let probe = inner.live_mix.digest_with(&external);
        if let Some((seen, decision)) = *self.gate_memo.lock() {
            if seen == probe {
                return Some(decision);
            }
        }
        if let Some((seen, walk, summary)) = inner.gate_walk_memo.lock().as_ref() {
            if *seen == probe {
                let outcome =
                    *walk.get(&self.token).expect("an open SLO session is always in the registry");
                let decision = self.decision_from(outcome, slo, *summary, probe);
                *self.gate_memo.lock() = Some((probe, decision));
                return Some(decision);
            }
        }
        let (digest, mix) = inner.live_mix.snapshot_with(external);
        let summary = mix.lane_summary();
        let outcomes: HashMap<u64, GateOutcome> = mix.gate_all(policy).into_iter().collect();
        let outcome =
            *outcomes.get(&self.token).expect("an open SLO session is always in the registry");
        *inner.gate_walk_memo.lock() = Some((digest, Arc::new(outcomes), summary));
        let decision = self.decision_from(outcome, slo, summary, digest);
        *self.gate_memo.lock() = Some((digest, decision));
        Some(decision)
    }

    /// Shapes a walk outcome into this session's [`GateDecision`],
    /// attaching the structured [`GateReason`] — the mix digest the walk
    /// was priced under, the co-runner count, the contended backlog, and
    /// the heaviest co-running lane (this session excluded) whose load
    /// drove the delay or shed.
    fn decision_from(
        &self,
        outcome: GateOutcome,
        slo: SimTime,
        summary: MixLaneSummary,
        digest: u64,
    ) -> GateDecision {
        // The walk prices demand lanes only; the serving layer stamps the
        // speculative in-flight label in after the fact, so a report can
        // show speculation separately from the demand backlog that
        // actually drove the decision.
        let mut summary = summary;
        summary.speculative_bytes = self.inner.scheduler.speculative_backlog_bytes();
        GateDecision {
            session: self.token,
            arrival: self.arrival,
            slo,
            predicted: outcome.predicted,
            delay: outcome.delay,
            shed: outcome.shed,
            re_gated: outcome.re_gated,
            reason: GateReason {
                digest,
                co_runners: summary.sessions.saturating_sub(1),
                backlog_channels: summary.backlog_channels,
                backlog_bytes: summary.backlog_bytes,
                dominant_lane: summary
                    .dominant_excluding(self.token)
                    .map(|(token, us)| (token, SimTime::from_us(us))),
                // Advisory label, sampled when the decision is shaped (a
                // memoized decision keeps the label it was shaped with).
                speculative_bytes: summary.speculative_bytes,
            },
        }
    }

    /// Runs the backpressure gate for this session *without* executing an
    /// engagement — the decision an [`Session::infer`] call would be
    /// subject to right now. `None` when the gate is off or the session
    /// carries no SLO. Pure: no queue state is touched, nothing is logged
    /// to the gate log; fleet-scale probes use this to measure per-decision
    /// gate cost without real IO.
    pub fn gate_decision(&self) -> Option<GateDecision> {
        self.gate()
    }

    /// Executes one engagement over the planned pipeline, streaming through
    /// the server's shared IO scheduler. The engagement's dispatch sequence
    /// feeds the contended track ([`StiServer::contention_report`]); its
    /// *result* stays on the uncontended track and is bit-identical to a
    /// solo run.
    ///
    /// With a [`BackpressureMode`] configured and a session SLO present,
    /// the engagement first passes the backpressure gate: it may be
    /// delayed on the simulated timeline (queue mode) or fail fast with
    /// [`PipelineError::Backpressure`] before touching the scheduler.
    ///
    /// # Errors
    ///
    /// Fails on storage errors, plan/model mismatch, or — with the gate on
    /// — [`PipelineError::Backpressure`] when the engagement is shed.
    pub fn infer(&self, tokens: &[u32]) -> Result<Inference, PipelineError> {
        let pending = self.infer_issue(tokens)?;
        self.infer_complete(pending)
    }

    /// The **issue half** of [`Session::infer`]: runs the backpressure
    /// gate, claims an IO lane on the shared scheduler, and enqueues every
    /// streaming layer's request — then returns without waiting for a
    /// single byte. The returned [`PendingEngagement`] owns the lane (and
    /// the in-flight accounting); hand it back to
    /// [`Session::infer_complete`] once the scheduler has had a chance to
    /// service the queue.
    ///
    /// `infer` is exactly issue-then-complete, so the split changes
    /// nothing observable for threaded callers. Its purpose is the
    /// event-driven executor: a simulated-clock host issues *every*
    /// co-arriving engagement first, drives the scheduler once, and then
    /// completes them — one OS thread, same queue contents, same results.
    ///
    /// # Errors
    ///
    /// Fails on storage errors, plan/model mismatch, or — with the gate on
    /// — [`PipelineError::Backpressure`] when the engagement is shed.
    pub fn infer_issue(&self, tokens: &[u32]) -> Result<PendingEngagement, PipelineError> {
        let inner = &*self.inner;

        // The backpressure gate runs before any queue state is touched: a
        // shed engagement never submits IO (and never perturbs the
        // contended track of the engagements that do run).
        let mut gate_delay = SimTime::ZERO;
        if let Some(decision) = self.gate() {
            inner.gate_log.lock().push(decision);
            inner.ins.gate_decisions.incr();
            inner.ins.gate_delay_us.record(decision.delay.as_us());
            inner.ins.gate_predicted_us.record(decision.predicted.as_us());
            if decision.shed {
                inner.ins.shed_engagements.incr();
                return Err(PipelineError::Backpressure {
                    predicted: decision.predicted,
                    slo: decision.slo,
                });
            }
            if decision.delay > SimTime::ZERO {
                inner.ins.queued_engagements.incr();
            }
            gate_delay = decision.delay;
            // Virtual clock: queue delays land on the simulated timeline
            // (`gate_delay` below prices the engagement); the wall clock
            // only moves when a throttle scale is explicitly set, so
            // fleet-scale synthetic sweeps never sleep for real.
            if inner.throttle_scale > 0.0 {
                std::thread::sleep(gate_delay.scale(inner.throttle_scale).to_duration());
            }
        }

        let active = inner.active_engagements.fetch_add(1, Ordering::SeqCst) + 1;
        let active_guard = ActiveGuard(self.inner.clone());
        inner.ins.peak_engagements.observe_peak(active as u64);

        // The engagement's position on the session's think-time clock:
        // arrival + n · issue_gap (zero gap — every engagement at the
        // session arrival — is the legacy clock, bit-identically).
        let seq = self.engagement_seq.fetch_add(1, Ordering::SeqCst);
        let base = self.arrival + SimTime::from_us(self.issue_gap.as_us().saturating_mul(seq));
        let issue = base + gate_delay;
        // Mark the channel as session-owned so a concurrent gate prices
        // this session from the registry, not from the live queue too. The
        // creation and the marking share one critical section with the
        // gate's snapshot, so no gate can observe the channel unowned.
        let channel = {
            let mut active = inner.active_channels.lock();
            let channel = inner.scheduler.channel_striped_at(issue, self.stripe);
            active.insert(channel.id(), self.token);
            channel
        };
        let channel_guard = ChannelGuard(self.inner.clone(), channel.id());
        let executor = self.executor();
        let has_request = executor.issue_on(&channel, &self.plan, &self.preload)?;
        Ok(PendingEngagement {
            channel,
            has_request,
            issue,
            tokens: tokens.to_vec(),
            _active: active_guard,
            _channel: channel_guard,
        })
    }

    /// The **complete half** of [`Session::infer`]: receives every layer
    /// the issue half requested, runs the forward pass, and lands the
    /// engagement on both accounting tracks. Blocks until the scheduler
    /// delivers the requested layers — under the event-driven executor the
    /// host drives the queue dry before calling this, so it never waits.
    ///
    /// # Errors
    ///
    /// Fails on storage errors or plan/model mismatch.
    pub fn infer_complete(&self, pending: PendingEngagement) -> Result<Inference, PipelineError> {
        let inner = &*self.inner;
        let executor = self.executor();
        let outcome = executor.complete_on(
            &pending.channel,
            &self.plan,
            &self.preload,
            &pending.tokens,
            &pending.has_request,
        )?;

        // Contended-track record: which layers streamed (an IO span in the
        // timeline) and the uniform per-layer compute delay.
        let layer_has_io: Vec<bool> =
            outcome.timeline.layers.iter().map(|l| l.io_end > l.io_start).collect();
        inner.engagement_log.lock().push(EngagementRecord {
            channel: pending.channel.id(),
            session: self.token,
            slo: self.slo,
            issue: pending.issue,
            layer_has_io,
            comp: inner.hw.t_comp(self.plan.shape.width),
            uncontended: outcome.timeline.makespan,
        });
        inner.ins.engagements.incr();

        // Feed the prefetcher *after* both accounting tracks have their
        // records: the observation (and any speculation it triggers) is
        // invisible to this engagement's own outcome by construction.
        if let Some(pf) = &inner.prefetch {
            self.prefetch_observe(pf, pending.issue + outcome.timeline.makespan);
        }

        Ok(Inference {
            class: outcome.class,
            probabilities: outcome.probabilities.clone(),
            submodel: self.plan.shape,
            outcome,
        })
    }

    /// Observes one engagement completion in the Markov model and, when a
    /// prediction clears the confidence floor, materializes it into
    /// speculative background jobs. `now` is the engagement's completion
    /// on the simulated timeline — the tick the speculation becomes
    /// available to run (and the arrival its contended pricing uses).
    fn prefetch_observe(&self, pf: &PrefetchState, now: SimTime) {
        let key = PrefetchKey {
            target_us: self.target.as_us(),
            preload_bytes: self.preload_budget,
            slo_us: self.slo.map_or(0, |s| s.as_us()),
            stripe: self.stripe,
        };
        let plan = {
            let mut model = pf.model.lock();
            let id = model.intern(key);
            pf.targets.lock().entry(id).or_insert_with(|| PrefetchTarget {
                plan: self.plan.clone(),
                preload: self.preload.clone(),
                stripe: self.stripe,
            });
            model.observe(self.token, id, now)
        };
        let Some(plan) = plan else { return };
        let Some(target) = pf.targets.lock().get(&plan.predicted).cloned() else { return };
        self.submit_speculation(&plan, &target);
    }

    /// Turns an emitted [`PrefetchPlan`] into speculative scheduler jobs:
    /// the predicted engagement's *streamed* working set (planned shards
    /// not covered by its preload buffer), grouped onto the device
    /// channels its layer requests would really route to, byte-capped at
    /// the plan budget. Jobs enter the scheduler's background lane —
    /// demand dispatches always go first — and their flash reads land in
    /// the staging pool, never the demand event log.
    fn submit_speculation(&self, plan: &PrefetchPlan, target: &PrefetchTarget) {
        let inner = &*self.inner;
        let topology = inner.scheduler.topology();
        let mut budget = plan.budget_bytes;
        let mut jobs: BTreeMap<u16, (Vec<ShardKey>, u64)> = BTreeMap::new();
        'layers: for pl in &target.plan.layers {
            let items: Vec<(u16, Bitwidth)> = pl
                .items()
                .filter(|&(slice, _)| !target.preload.contains(ShardId::new(pl.layer, slice)))
                .collect();
            if items.is_empty() {
                continue;
            }
            let sig = LayerRequest { layer: pl.layer, items: items.clone() }.content_sig();
            let dc = topology.channel_for(sig, target.stripe);
            for (slice, bw) in items {
                let key = ShardKey::new(ShardId::new(pl.layer, slice), bw);
                let bytes = match inner.cached_source.size_bytes(key) {
                    Ok(bytes) if bytes > 0 => bytes,
                    _ => continue,
                };
                if bytes > budget {
                    break 'layers;
                }
                budget -= bytes;
                let entry = jobs.entry(dc).or_default();
                entry.0.push(key);
                entry.1 += bytes;
            }
        }
        for (dc, (keys, bytes)) in jobs {
            inner.scheduler.submit_speculative(SpeculativeJob {
                session: plan.client,
                device_channel: dc,
                arrival: plan.emitted_at,
                bytes,
                keys,
            });
        }
    }

    fn executor(&self) -> PipelineExecutor<'_> {
        PipelineExecutor::new(
            &self.inner.model,
            self.inner.cached_source.clone(),
            self.inner.flash,
            &self.inner.hw,
        )
        .with_throttle(self.inner.throttle_scale)
    }

    /// Generative extension: greedily decodes `steps` tokens after
    /// `prompt`, streaming the submodel once through the shared shard cache
    /// and reusing it every step (same amortization as
    /// [`StiEngine::generate`](crate::engine::StiEngine::generate)).
    ///
    /// # Errors
    ///
    /// Fails if any planned shard cannot be loaded.
    pub fn generate(
        &self,
        prompt: &[u32],
        steps: usize,
    ) -> Result<GenerationOutcome, PipelineError> {
        let inner = &*self.inner;
        let (submodel, loaded_bytes) =
            assemble_plan_submodel(&inner.model, &self.plan, &self.preload, &*inner.cached_source)?;
        let generation = sti_transformer::decoder::generate(&inner.model, &submodel, prompt, steps);
        let per_step = inner.hw.t_comp(self.plan.shape.width) * self.plan.shape.depth as u64;
        Ok(GenerationOutcome {
            tokens: generation.tokens,
            generated: generation.generated,
            first_step: self.plan.predicted.makespan,
            per_step,
            loaded_bytes,
        })
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("target", &self.target)
            .field("preload_budget", &self.preload_budget)
            .field("shape", &self.plan.shape)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sti_device::DeviceProfile;
    use sti_nlp::{Task, TaskKind};
    use sti_quant::QuantConfig;
    use sti_storage::MemStore;
    use sti_transformer::ModelConfig;

    fn server() -> StiServer {
        let cfg = ModelConfig::tiny();
        let task = Task::build(TaskKind::Sst2, cfg.clone(), 4, 4);
        let dev = DeviceProfile::odroid_n2();
        let hw = HwProfile::measure(&dev, &cfg, &QuantConfig::default());
        let source =
            Arc::new(MemStore::build(task.model(), &Bitwidth::ALL, &QuantConfig::default()));
        let importance = ImportanceProfile::from_scores(
            cfg.layers,
            cfg.heads,
            (0..cfg.total_shards()).map(|i| 0.5 + (i % 5) as f64 * 0.01).collect(),
            0.45,
        );
        StiServer::builder(task.model().clone(), source, hw, dev.flash, importance)
            .target(SimTime::from_ms(300))
            .preload_budget(64 << 10)
            .widths(&[2, 4])
            .build()
    }

    #[test]
    fn sessions_share_one_plan_per_knob_set() {
        let srv = server();
        let a = srv.session().unwrap();
        let b = srv.session().unwrap();
        assert!(Arc::ptr_eq(&a.plan, &b.plan), "same knobs must share the plan");
        assert!(Arc::ptr_eq(&a.preload, &b.preload), "and the preload buffer");
        let stats = srv.plan_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(srv.cached_plans(), 1);
    }

    #[test]
    fn distinct_knobs_get_distinct_plans() {
        let srv = server();
        let a = srv.session_with(SimTime::from_ms(300), 64 << 10).unwrap();
        let b = srv.session_with(SimTime::from_ms(1_000), 64 << 10).unwrap();
        assert!(!Arc::ptr_eq(&a.plan, &b.plan));
        assert!(b.plan().shape.shard_count() >= a.plan().shape.shard_count());
        assert_eq!(srv.cached_plans(), 2);
    }

    /// A server with a deliberately tiny main shard cache (so demand
    /// misses recur) and the Markov prefetcher on.
    fn prefetch_server() -> StiServer {
        let cfg = ModelConfig::tiny();
        let task = Task::build(TaskKind::Sst2, cfg.clone(), 4, 4);
        let dev = DeviceProfile::odroid_n2();
        let hw = HwProfile::measure(&dev, &cfg, &QuantConfig::default());
        let source =
            Arc::new(MemStore::build(task.model(), &Bitwidth::ALL, &QuantConfig::default()));
        let importance = ImportanceProfile::from_scores(
            cfg.layers,
            cfg.heads,
            (0..cfg.total_shards()).map(|i| 0.5 + (i % 5) as f64 * 0.01).collect(),
            0.45,
        );
        StiServer::builder(task.model().clone(), source, hw, dev.flash, importance)
            .target(SimTime::from_ms(300))
            .preload_budget(0)
            .widths(&[2, 4])
            .shard_cache_bytes(1 << 10)
            .prefetch(PrefetchConfig::markov(1 << 20))
            .build()
    }

    #[test]
    fn prefetch_report_is_none_with_prefetch_off() {
        let srv = server();
        assert!(srv.prefetch_report().is_none());
        let s = srv.session().unwrap();
        s.infer(&[1, 2, 3]).unwrap();
        assert!(srv.contention_report().prefetch.is_none());
    }

    #[test]
    fn markov_prefetch_stages_the_predicted_working_set_and_serves_later_misses() {
        let srv = prefetch_server();
        let mut s = srv.session().unwrap();
        s.set_issue_gap(SimTime::from_ms(50));
        s.infer(&[1, 2, 3]).unwrap();
        // The second completion creates the self-recurrence edge and emits
        // a plan; the speculative job runs once the demand queue drains.
        s.infer(&[1, 2, 3]).unwrap();
        let mut tries = 0;
        while srv.prefetch_report().unwrap().jobs == 0 && tries < 400 {
            std::thread::sleep(std::time::Duration::from_millis(5));
            tries += 1;
        }
        let report = srv.prefetch_report().unwrap();
        assert!(report.model.plans >= 1, "a self-recurrent session must emit a plan");
        assert!(report.jobs >= 1, "the plan must materialize into speculative jobs");
        assert!(
            report.speculated_bytes + report.pinned_bytes > 0,
            "speculation must stage or pin something"
        );
        // The next engagement's demand misses promote staged blobs out of
        // the pool instead of re-reading flash.
        s.infer(&[1, 2, 3]).unwrap();
        let pool = srv.prefetch_report().unwrap().pool;
        assert!(pool.hits > 0, "staged shards must serve the next engagement's misses");
        assert!(pool.hit_bytes > 0);
        // Contended pricing exists, charges the speculative service time,
        // and the speculative label never leaks into demand aggregates.
        let contention = srv.contention_report();
        let spec = contention.prefetch.expect("prefetch pricing present when enabled");
        // The third completion may have emitted (and run) another plan by
        // now; the priced jobs can only grow past the harvested count.
        assert!(spec.jobs >= report.jobs);
        assert!(spec.busy > SimTime::ZERO || spec.speculated_bytes == 0);
    }

    #[test]
    fn issue_gap_spreads_engagement_issues_without_touching_results() {
        let srv = server();
        let gapped = srv.session().unwrap();
        let plain = srv.session().unwrap();
        let mut g = gapped;
        g.set_issue_gap(SimTime::from_ms(500));
        let a = g.infer(&[5, 6]).unwrap();
        let b = g.infer(&[5, 6]).unwrap();
        let c = plain.infer(&[5, 6]).unwrap();
        assert_eq!(a.class, b.class);
        assert_eq!(a.class, c.class, "the issue gap is contended-track only");
        let report = srv.contention_report();
        let issues: Vec<SimTime> =
            report.engagements.iter().filter(|e| e.session == g.token()).map(|e| e.issue).collect();
        assert_eq!(issues.len(), 2);
        // The gap exceeds the first engagement's contended completion, so
        // the second issue lands exactly one gap after the first.
        assert_eq!(issues[1], issues[0] + SimTime::from_ms(500));
    }

    #[test]
    fn infer_matches_session_plan() {
        let srv = server();
        let s = srv.session().unwrap();
        let inf = s.infer(&[1, 2, 3]).unwrap();
        assert_eq!(inf.probabilities.len(), 2);
        assert!(inf.class < 2);
        assert_eq!(inf.submodel, s.plan().shape);
    }

    #[test]
    fn retargeting_reuses_cached_plans() {
        let srv = server();
        let mut s = srv.session().unwrap();
        let original = s.plan.clone();
        s.set_target(SimTime::from_ms(1_000)).unwrap();
        s.set_target(SimTime::from_ms(300)).unwrap();
        assert!(Arc::ptr_eq(&s.plan, &original), "returning to old knobs hits the cache");
        // 300ms twice (miss + hit) and 1000ms once (miss).
        assert_eq!(srv.plan_stats().misses, 2);
    }

    #[test]
    fn set_importance_changes_subsequent_plans() {
        let srv = server();
        let before = srv.session().unwrap();
        // A sharply skewed profile: later shards dominate, reversing the
        // upgrade order the flat-ish default profile produced.
        let cfg = ModelConfig::tiny();
        let skewed = ImportanceProfile::from_scores(
            cfg.layers,
            cfg.heads,
            (0..cfg.total_shards()).map(|i| 0.3 + i as f64 * 0.04).collect(),
            0.45,
        );
        srv.set_importance(skewed);
        let after = srv.session().unwrap();
        assert!(!Arc::ptr_eq(&before.plan, &after.plan));
        assert_eq!(srv.plan_stats().misses, 2, "new table must force a replan");
    }

    #[test]
    fn invalidation_forces_replan_for_new_sessions() {
        let srv = server();
        let s1 = srv.session().unwrap();
        srv.invalidate_plans();
        let s2 = srv.session().unwrap();
        assert!(!Arc::ptr_eq(&s1.plan, &s2.plan), "invalidation must drop the entry");
        assert_eq!(s1.plan(), s2.plan(), "replanning is deterministic");
        assert_eq!(srv.plan_stats().misses, 2);
    }

    #[test]
    fn repeated_inference_warms_the_shard_cache() {
        let srv = server();
        // Zero preload: every engagement streams its full submodel.
        let s = srv.session_with(SimTime::from_ms(300), 0).unwrap();
        s.infer(&[1, 2]).unwrap();
        let cold = srv.shard_stats();
        s.infer(&[1, 2]).unwrap();
        let warm = srv.shard_stats();
        assert!(warm.hits > cold.hits, "second engagement must reuse blobs");
    }

    #[test]
    fn generation_streams_once_and_is_deterministic() {
        let srv = server();
        let s = srv.session().unwrap();
        let g = s.generate(&[1, 2], 5).unwrap();
        assert_eq!(g.generated, 5);
        assert_eq!(g.tokens.len(), 7);
        assert!(g.per_step <= g.first_step);
        assert_eq!(s.generate(&[1, 2], 5).unwrap().tokens, g.tokens);
    }

    #[test]
    fn io_stats_track_scheduler_traffic() {
        let srv = server();
        // Zero preload: every engagement streams its full submodel.
        let s = srv.session_with(SimTime::from_ms(300), 0).unwrap();
        let inf = s.infer(&[7]).unwrap();
        let stats = srv.io_stats();
        assert_eq!(stats.requests, s.plan().layers.len() as u64);
        assert_eq!(stats.bytes, inf.outcome.loaded_bytes);
        assert!(stats.sim_flash_busy > SimTime::ZERO);
    }

    fn server_with_admission(mode: AdmissionMode) -> StiServer {
        let cfg = ModelConfig::tiny();
        let task = Task::build(TaskKind::Sst2, cfg.clone(), 4, 4);
        let dev = DeviceProfile::odroid_n2();
        let hw = HwProfile::measure(&dev, &cfg, &QuantConfig::default());
        let source =
            Arc::new(MemStore::build(task.model(), &Bitwidth::ALL, &QuantConfig::default()));
        let importance = ImportanceProfile::from_scores(
            cfg.layers,
            cfg.heads,
            (0..cfg.total_shards()).map(|i| 0.5 + (i % 5) as f64 * 0.01).collect(),
            0.45,
        );
        StiServer::builder(task.model().clone(), source, hw, dev.flash, importance)
            .preload_budget(0)
            .widths(&[2, 4])
            .admission(mode)
            .build()
    }

    /// An SLO no plan can meet once co-runners exist: the uncontended
    /// makespan of the smallest possible plan.
    fn floor_slo(srv: &StiServer) -> SimTime {
        let s = srv.session_with(SimTime::from_us(1), 0).unwrap();
        s.plan().predicted.makespan
    }

    #[test]
    fn open_sessions_are_counted() {
        let srv = server();
        assert_eq!(srv.open_sessions(), 0);
        let a = srv.session().unwrap();
        let b = srv.session().unwrap();
        assert_eq!(srv.open_sessions(), 2);
        drop(a);
        drop(b);
        assert_eq!(srv.open_sessions(), 0);
    }

    #[test]
    fn slo_session_plans_against_contention() {
        let srv = server_with_admission(AdmissionMode::Enforce);
        let s = srv.session_with_slo(SimTime::from_ms(5_000), 0).unwrap();
        let served = s.serving_plan().expect("SLO session carries its search outcome");
        assert!(served.meets_slo);
        assert!(served.predicted_contended <= SimTime::from_ms(5_000));
        assert_eq!(s.slo(), Some(SimTime::from_ms(5_000)));
        assert_eq!(srv.serving_stats().admitted_sessions, 1);
    }

    #[test]
    fn enforce_rejects_an_unmeetable_slo() {
        let srv = server_with_admission(AdmissionMode::Enforce);
        let slo = floor_slo(&srv);
        // Alone the floor SLO is exactly achievable...
        let first = srv.session_with_slo(slo, 0).unwrap();
        // ...but with a co-runner on the flash channel it no longer is.
        let err = srv.session_with_slo(slo, 0).unwrap_err();
        match err {
            PipelineError::AdmissionRejected { predicted, slo: got, co_runners } => {
                assert!(predicted > got);
                assert_eq!(co_runners, 1);
            }
            other => panic!("expected AdmissionRejected, got {other}"),
        }
        let stats = srv.serving_stats();
        assert_eq!((stats.admitted_sessions, stats.rejected_sessions), (1, 1));
        drop(first);
        // With the channel free again the same SLO admits.
        assert!(srv.session_with_slo(slo, 0).is_ok());
    }

    #[test]
    fn batching_admits_identical_sessions_an_unbatched_prediction_rejects() {
        let build = |policy: BatchPolicy| {
            let cfg = ModelConfig::tiny();
            let task = Task::build(TaskKind::Sst2, cfg.clone(), 4, 4);
            let dev = DeviceProfile::odroid_n2();
            let hw = HwProfile::measure(&dev, &cfg, &QuantConfig::default());
            let source =
                Arc::new(MemStore::build(task.model(), &Bitwidth::ALL, &QuantConfig::default()));
            let importance = ImportanceProfile::from_scores(
                cfg.layers,
                cfg.heads,
                (0..cfg.total_shards()).map(|i| 0.5 + (i % 5) as f64 * 0.01).collect(),
                0.45,
            );
            StiServer::builder(task.model().clone(), source, hw, dev.flash, importance)
                .preload_budget(0)
                .widths(&[2, 4])
                .admission(AdmissionMode::Enforce)
                .batch_policy(policy)
                .build()
        };
        let slo = floor_slo(&build(BatchPolicy::Off));

        // Unbatched: a second identical-SLO session queues behind the
        // first's reads and is rejected (the pre-batching behaviour).
        let unbatched = build(BatchPolicy::Off);
        let _first = unbatched.session_with_slo(slo, 0).unwrap();
        assert!(unbatched.session_with_slo(slo, 0).is_err());

        // Batched: identical sessions share every read, so the contended
        // prediction collapses to the uncontended one and both admit.
        let batched = build(BatchPolicy::from_window_us(1_000));
        let _a = batched.session_with_slo(slo, 0).unwrap();
        let b = batched.session_with_slo(slo, 0).expect("shared IO admits the identical session");
        let served = b.serving_plan().unwrap();
        assert!(served.meets_slo);
        assert_eq!(served.co_runners, 1);
        assert_eq!(
            served.predicted_contended, slo,
            "fully coalesced co-residents predict the uncontended floor"
        );
        let stats = batched.serving_stats();
        assert_eq!((stats.admitted_sessions, stats.rejected_sessions), (2, 0));
    }

    #[test]
    fn admission_predicts_against_real_co_runner_loads() {
        // A heavyweight open session must weigh more in admission than a
        // featherweight one — the clone model could not see the difference.
        let srv = server_with_admission(AdmissionMode::Enforce);
        let slo = floor_slo(&srv);
        // Featherweight co-runner: a generous-target session... planned at
        // the floor target streams almost nothing extra; heavyweight: a
        // 10 s target streams the full-fidelity model.
        let feather = srv.session_with(SimTime::from_us(1), 0).unwrap();
        let floor_err = srv.session_with_slo(slo, 0).unwrap_err();
        drop(feather);
        let heavy = srv.session_with(SimTime::from_ms(10_000), 0).unwrap();
        let heavy_err = srv.session_with_slo(slo, 0).unwrap_err();
        drop(heavy);
        match (floor_err, heavy_err) {
            (
                PipelineError::AdmissionRejected { predicted: p_feather, .. },
                PipelineError::AdmissionRejected { predicted: p_heavy, .. },
            ) => {
                assert!(
                    p_heavy > p_feather,
                    "a heavier co-runner must predict more contention: {p_heavy} <= {p_feather}"
                );
            }
            other => panic!("both opens must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn retarget_slo_replans_in_place_and_a_rejected_retarget_keeps_the_plan() {
        let srv = server_with_admission(AdmissionMode::Enforce);
        let mut s = srv.session_with_slo(SimTime::from_ms(5_000), 0).unwrap();
        assert_eq!(srv.open_sessions(), 1);
        // Retargeting re-plans in place against the current mix: no new
        // session, no new admission.
        s.retarget_slo(SimTime::from_ms(8_000)).unwrap();
        assert_eq!(s.slo(), Some(SimTime::from_ms(8_000)));
        assert!(s.serving_plan().unwrap().meets_slo);
        assert_eq!(srv.open_sessions(), 1);
        assert_eq!(srv.serving_stats().admitted_sessions, 1);
        // With a heavy co-runner open, the floor SLO is unmeetable: the
        // retarget is rejected and the session keeps its current plan.
        let _heavy = srv.session_with(SimTime::from_ms(10_000), 0).unwrap();
        let floor = floor_slo(&srv);
        let before = s.plan().clone();
        assert!(matches!(s.retarget_slo(floor), Err(PipelineError::AdmissionRejected { .. })));
        assert_eq!(s.plan(), &before, "a rejected retarget leaves the session untouched");
        assert_eq!(s.slo(), Some(SimTime::from_ms(8_000)));
    }

    #[test]
    fn monitor_admits_but_counts_violations() {
        let srv = server_with_admission(AdmissionMode::Monitor);
        let slo = floor_slo(&srv);
        let _first = srv.session_with_slo(slo, 0).unwrap();
        let second = srv.session_with_slo(slo, 0);
        assert!(second.is_ok(), "monitor mode must not reject");
        assert_eq!(srv.serving_stats().monitor_violations, 1);
    }

    #[test]
    fn slo_searches_are_memoized_per_co_runner_count() {
        let srv = server_with_admission(AdmissionMode::Disabled);
        let slo = SimTime::from_ms(5_000);
        let _a = srv.session_with_slo(slo, 0).unwrap(); // co=0: miss
        let _b = srv.session_with_slo(slo, 0).unwrap(); // co=1: miss
        let _c = srv.session_with_slo(slo, 0).unwrap(); // co=2: miss
        drop(_c);
        let _d = srv.session_with_slo(slo, 0).unwrap(); // co=2 again: hit
        let stats = srv.slo_plan_stats();
        assert_eq!((stats.hits, stats.misses), (1, 3));
    }

    fn server_with_backpressure(mode: BackpressureMode) -> StiServer {
        let cfg = ModelConfig::tiny();
        let task = Task::build(TaskKind::Sst2, cfg.clone(), 4, 4);
        let dev = DeviceProfile::odroid_n2();
        let hw = HwProfile::measure(&dev, &cfg, &QuantConfig::default());
        let source =
            Arc::new(MemStore::build(task.model(), &Bitwidth::ALL, &QuantConfig::default()));
        let importance = ImportanceProfile::from_scores(
            cfg.layers,
            cfg.heads,
            (0..cfg.total_shards()).map(|i| 0.5 + (i % 5) as f64 * 0.01).collect(),
            0.45,
        );
        StiServer::builder(task.model().clone(), source, hw, dev.flash, importance)
            .preload_budget(0)
            .widths(&[2, 4])
            .backpressure(mode)
            .build()
    }

    #[test]
    fn shed_gate_fails_fast_when_the_backlog_predicts_a_miss() {
        let srv = server_with_backpressure(BackpressureMode::Shed);
        let slo = floor_slo(&srv);
        // Both sessions admit (admission is disabled); the gate, not
        // admission, is under test.
        let first = srv.session_with_slo(slo, 0).unwrap();
        let second = srv.session_with_slo(slo, 0).unwrap();
        // The first-arriving session has the queue to itself and runs.
        first.infer(&[1, 2]).expect("the first session's engagement passes the gate");
        // The second's prediction rides behind the first's registered load
        // and misses the floor SLO: shed, before touching the scheduler.
        match second.infer(&[1, 2]) {
            Err(PipelineError::Backpressure { predicted, slo: got }) => {
                assert!(predicted > got);
                assert_eq!(got, slo);
            }
            other => panic!("expected a backpressure shed, got {other:?}"),
        }
        let stats = srv.serving_stats();
        assert_eq!((stats.engagements, stats.shed_engagements), (1, 1));
        let report = srv.contention_report();
        assert_eq!(report.engagements.len(), 1, "shed engagements never execute");
        assert_eq!(report.gate.len(), 2);
        assert_eq!(report.shed_count(), 1);
        assert_eq!(report.slo_hit_rate(), Some(1.0), "what ran met its SLO");
        // Harvesting resets the gate log too.
        srv.reset_contention_log();
        assert!(srv.contention_report().gate.is_empty());
    }

    #[test]
    fn queue_gate_delays_instead_of_shedding_and_the_measured_track_agrees() {
        let srv = server_with_backpressure(BackpressureMode::Queue(SimTime::from_ms(60_000)));
        let slo = floor_slo(&srv);
        let first = srv.session_with_slo(slo, 0).unwrap();
        let second = srv.session_with_slo(slo, 0).unwrap();
        first.infer(&[1, 2]).unwrap();
        second.infer(&[1, 2]).expect("queue mode waits instead of shedding");
        let stats = srv.serving_stats();
        assert_eq!(
            (stats.engagements, stats.shed_engagements, stats.queued_engagements),
            (2, 0, 1)
        );
        let report = srv.contention_report();
        assert_eq!(report.shed_count(), 0);
        assert_eq!(report.queue_delayed(), 1);
        assert!(report.max_queue_delay() > SimTime::ZERO);
        // The delayed engagement queued past the first's window, so the
        // measured contended track meets the SLO both engagements carry.
        assert_eq!(report.slo_hit_rate(), Some(1.0));
        // With a maximum delay too small to drain the backlog, the same
        // engagement is shed instead.
        let strict = server_with_backpressure(BackpressureMode::Queue(SimTime::from_us(1)));
        let tight = floor_slo(&strict);
        let a = strict.session_with_slo(tight, 0).unwrap();
        let b = strict.session_with_slo(tight, 0).unwrap();
        a.infer(&[3]).unwrap();
        assert!(
            matches!(b.infer(&[3]), Err(PipelineError::Backpressure { .. })),
            "a 1µs patience cannot absorb a full co-runner engagement"
        );
    }

    #[test]
    fn queue_delay_prices_sessions_arriving_during_the_wait() {
        // A queue delay can land an engagement inside the window of a
        // session that arrives *after* it — the delay search must price
        // that load too, not just what was ahead at the original arrival.
        let run = |with_late_heavy: bool| {
            let srv = server_with_backpressure(BackpressureMode::Queue(SimTime::from_ms(60_000)));
            let full = srv.session_with(SimTime::from_ms(10_000), 0).unwrap();
            // ~20% slack over the full-model makespan: meetable alone, not
            // behind a heavy co-runner.
            let makespan = full.plan().predicted.makespan.as_us();
            let slo = SimTime::from_us(makespan + makespan / 5);
            drop(full);
            let mut tight = srv.session_with_slo(slo, 0).unwrap();
            tight.set_arrival(SimTime::from_us(100));
            // A heavy co-runner already queued at time zero...
            let _early = srv.session_with(SimTime::from_ms(10_000), 0).unwrap();
            // ...and optionally another arriving 2 ms in — inside any
            // delay that clears the first one.
            let _late = with_late_heavy.then(|| {
                let mut s = srv.session_with(SimTime::from_ms(10_000), 0).unwrap();
                s.set_arrival(SimTime::from_ms(2));
                s
            });
            tight.infer(&[1, 2]).expect("queue mode waits instead of shedding");
            let report = srv.contention_report();
            let decision = report.gate[0];
            assert!(!decision.shed);
            assert!(decision.delay > SimTime::ZERO, "the early heavy load forces a wait");
            assert_eq!(report.slo_hit_rate(), Some(1.0));
            decision.delay
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with > without,
            "a session arriving during the wait must lengthen it: {with} <= {without}"
        );
    }

    #[test]
    fn repeat_engagements_reuse_the_gate_decision_until_the_mix_changes() {
        let srv = server_with_backpressure(BackpressureMode::Queue(SimTime::from_ms(60_000)));
        let slo = floor_slo(&srv);
        let a = srv.session_with_slo(slo, 0).unwrap();
        let b = srv.session_with_slo(slo, 0).unwrap();
        // Fixed-point gate pass: `a` and `b` mutually co-arrive, so the
        // walk iterates until their decisions are consistent — `b` (the
        // later token) queues behind `a`, and `a`, re-gated against `b`'s
        // *decided* (delayed) position rather than its raw arrival, keeps
        // the queue head with no wait of its own.
        a.infer(&[1]).unwrap();
        a.infer(&[2]).unwrap();
        let report = srv.contention_report();
        assert_eq!(report.gate.len(), 2, "every engagement logs a decision");
        let a_token = report.gate.iter().map(|d| d.session).min().unwrap();
        let a_decisions: Vec<_> = report.gate.iter().filter(|d| d.session == a_token).collect();
        assert_eq!(a_decisions.len(), 2);
        assert_eq!(a_decisions[0], a_decisions[1], "an unchanged mix reuses the decision");
        assert_eq!(
            a_decisions[0].delay,
            SimTime::ZERO,
            "at the fixed point the earliest token runs first, not behind its own follower"
        );
        assert!(a_decisions[0].re_gated, "the decision went through the co-arrival iteration");
        assert_eq!(report.re_gated_count(), 2);
        // A registry change (a session closing) invalidates the memo: with
        // the queue to itself, the next engagement needs no delay.
        drop(b);
        a.infer(&[3]).unwrap();
        let report = srv.contention_report();
        let last = report.gate.iter().rfind(|d| d.session == a_token).unwrap();
        assert_eq!(last.delay, SimTime::ZERO, "the mix changed, the decision follows");
        assert!(!last.re_gated, "no co-arriving later session remains to re-gate against");
    }

    #[test]
    fn gate_is_inert_without_an_slo_or_with_mode_off() {
        // Off mode: SLO sessions never gate.
        let off = server_with_backpressure(BackpressureMode::Off);
        let slo = floor_slo(&off);
        let a = off.session_with_slo(slo, 0).unwrap();
        let b = off.session_with_slo(slo, 0).unwrap();
        a.infer(&[1]).unwrap();
        b.infer(&[1]).expect("mode off never sheds");
        assert!(off.contention_report().gate.is_empty());
        // Shed mode, but target sessions (no SLO): nothing to gate on.
        let shed = server_with_backpressure(BackpressureMode::Shed);
        let s1 = shed.session_with(SimTime::from_ms(300), 0).unwrap();
        let s2 = shed.session_with(SimTime::from_ms(300), 0).unwrap();
        s1.infer(&[1]).unwrap();
        s2.infer(&[1]).expect("sessions without an SLO are never gated");
        assert!(shed.contention_report().gate.is_empty());
        assert_eq!(shed.serving_stats().shed_engagements, 0);
    }

    #[test]
    fn contention_report_tracks_concurrent_stretch() {
        let srv = server();
        let s = srv.session_with(SimTime::from_ms(300), 0).unwrap();
        let first = s.infer(&[1, 2]).unwrap();
        let second = s.infer(&[1, 2]).unwrap();
        assert_eq!(first.probabilities, second.probabilities, "uncontended track untouched");
        let report = srv.contention_report();
        assert_eq!(report.engagements.len(), 2);
        for e in &report.engagements {
            // Sequential engagements had the flash queue to themselves:
            // measured from each one's first service start, the contended
            // latency reproduces the uncontended makespan exactly. (An
            // interleaved neighbour would stretch it — the concurrent
            // replay tests cover that side.)
            assert_eq!(e.contended, e.uncontended, "sequential run must not be inflated");
        }
        assert_eq!(report.flash_busy, srv.io_stats().sim_flash_busy);
        assert!(report.latency_percentile(0.5) >= report.engagements[0].uncontended);
        assert!(report.slo_hit_rate().is_none(), "no SLO sessions ran");

        // Harvest-and-reset: the next report starts empty.
        srv.reset_contention_log();
        let fresh = srv.contention_report();
        assert!(fresh.engagements.is_empty());
        assert_eq!(fresh.flash_busy, SimTime::ZERO);
    }

    #[test]
    fn dram_residency_shrinks_contended_latency_of_warm_engagements() {
        let build = |dram: bool| {
            let cfg = ModelConfig::tiny();
            let task = Task::build(TaskKind::Sst2, cfg.clone(), 4, 4);
            let dev = DeviceProfile::odroid_n2();
            let hw = HwProfile::measure(&dev, &cfg, &QuantConfig::default());
            let source =
                Arc::new(MemStore::build(task.model(), &Bitwidth::ALL, &QuantConfig::default()));
            let importance = ImportanceProfile::from_scores(
                cfg.layers,
                cfg.heads,
                (0..cfg.total_shards()).map(|i| 0.5 + (i % 5) as f64 * 0.01).collect(),
                0.45,
            );
            StiServer::builder(task.model().clone(), source, hw, dev.flash, importance)
                .preload_budget(0)
                .widths(&[2, 4])
                .dram_residency(dram)
                .build()
        };
        let run = |srv: &StiServer| {
            let s = srv.session_with(SimTime::from_ms(300), 0).unwrap();
            s.infer(&[3]).unwrap(); // cold: fills the shard cache
            s.infer(&[3]).unwrap(); // warm: fully cache-resident
            srv.contention_report()
        };
        let flash_only = run(&build(false));
        let with_dram = run(&build(true));
        assert_eq!(
            flash_only.engagements[0].contended, with_dram.engagements[0].contended,
            "cold engagement pays flash either way"
        );
        assert!(
            with_dram.engagements[1].contended < flash_only.engagements[1].contended,
            "residency mode must make the warm engagement cheaper on the contended track"
        );
        // The uncontended (deterministic) track is identical either way.
        assert_eq!(flash_only.engagements[1].uncontended, with_dram.engagements[1].uncontended);
    }
}
