//! The multi-session serving runtime (the production face of the engine).
//!
//! [`StiEngine`](crate::engine::StiEngine) reproduces the paper's contract
//! for **one** app: plan once, execute repeatedly. A device serving heavy
//! traffic runs **many** concurrent engagements of the same model, and
//! almost everything they need is shareable:
//!
//! - the model's resident parameters (embedding, norms, classifier);
//! - compressed shard blobs (a shared [`ShardCache`] over the store);
//! - execution plans (a [`PlanCache`] keyed by the planning knobs —
//!   replanning happens only on knob changes, §3.2);
//! - preload-buffer contents (read-mostly once built, shared per knob set);
//! - the flash device itself (an [`IoScheduler`] multiplexing layer
//!   requests FIFO-per-engagement, round-robin across engagements).
//!
//! [`StiServer`] owns all of that; [`Session`] is a lightweight handle an
//! app holds, carrying only its knobs and `Arc`s to the resolved plan and
//! preload buffer. Sessions are cheap to open, independently retargetable,
//! and safe to drive from concurrent threads.
//!
//! **Determinism contract:** an engagement's outcome (class, probabilities,
//! simulated timeline, loaded bytes) depends only on the model, the plan,
//! and the tokens — never on cache temperature or on what other sessions
//! are doing. Concurrent serving reproduces sequential results bit-for-bit;
//! the shared caches buy host wall-clock throughput, not simulated-time
//! shortcuts. The serving integration tests pin this down.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use sti_device::{FlashModel, HwProfile, SimTime};
use sti_planner::compute_plan::dynabert_widths_for;
use sti_planner::{
    plan_two_stage, ExecutionPlan, ImportanceProfile, PlanCache, PlanCacheStats, PlanKey,
};
use sti_quant::Bitwidth;
use sti_storage::{
    CachedSource, IoScheduler, IoSchedulerStats, ShardCache, ShardCacheStats, ShardKey, ShardSource,
};
use sti_transformer::Model;

use crate::buffers::PreloadBuffer;
use crate::engine::{GenerationOutcome, Inference};
use crate::error::PipelineError;
use crate::executor::{assemble_plan_submodel, PipelineExecutor};

/// Builder for [`StiServer`].
pub struct StiServerBuilder {
    model: Model,
    source: Arc<dyn ShardSource>,
    hw: HwProfile,
    flash: FlashModel,
    importance: ImportanceProfile,
    default_target: SimTime,
    default_preload_budget: u64,
    bitwidths: Vec<Bitwidth>,
    widths: Vec<usize>,
    throttle_scale: f64,
    io_workers: usize,
    shard_cache_bytes: u64,
}

impl StiServerBuilder {
    /// Default target latency `T` for sessions opened without knobs
    /// (default 200 ms).
    pub fn target(mut self, target: SimTime) -> Self {
        self.default_target = target;
        self
    }

    /// Default preload-buffer budget `|S|` in bytes (default 1 MiB).
    pub fn preload_budget(mut self, bytes: u64) -> Self {
        self.default_preload_budget = bytes;
        self
    }

    /// Fidelity versions available in the store (default: all).
    pub fn bitwidths(mut self, bitwidths: &[Bitwidth]) -> Self {
        self.bitwidths = bitwidths.to_vec();
        self
    }

    /// Allowed submodel widths (default: DynaBERT's {3, 6, 9, 12}).
    pub fn widths(mut self, widths: &[usize]) -> Self {
        self.widths = widths.to_vec();
        self
    }

    /// Wall-clock throttling of simulated IO (demonstrations only).
    pub fn throttle(mut self, scale: f64) -> Self {
        self.throttle_scale = scale;
        self
    }

    /// Host IO-worker threads in the scheduler pool (default 1; the
    /// simulated device still has a single flash channel either way).
    pub fn io_workers(mut self, workers: usize) -> Self {
        self.io_workers = workers.max(1);
        self
    }

    /// Byte budget of the shared compressed-shard cache (default 4 MiB;
    /// zero disables cross-engagement blob reuse).
    pub fn shard_cache_bytes(mut self, bytes: u64) -> Self {
        self.shard_cache_bytes = bytes;
        self
    }

    /// Starts the IO scheduler and returns the ready server. No planning
    /// happens yet — plans and preload buffers materialize lazily, once per
    /// knob combination, when sessions open.
    pub fn build(self) -> StiServer {
        let shard_cache = Arc::new(ShardCache::new(self.shard_cache_bytes));
        let cached_source: Arc<dyn ShardSource> =
            Arc::new(CachedSource::new(self.source.clone(), shard_cache.clone()));
        let scheduler = IoScheduler::spawn(
            self.source.clone(),
            self.flash,
            self.io_workers,
            self.throttle_scale,
            Some(shard_cache.clone()),
        );
        let cfg = self.model.config();
        let fingerprint = format!(
            "model-{}x{}-h{}-f{}-v{}",
            cfg.layers, cfg.heads, cfg.hidden, cfg.ffn, cfg.vocab
        );
        StiServer {
            inner: Arc::new(ServerInner {
                model: self.model,
                cached_source,
                shard_cache,
                scheduler,
                hw: self.hw,
                flash: self.flash,
                importance: RwLock::new(self.importance),
                bitwidths: self.bitwidths,
                widths: self.widths,
                throttle_scale: self.throttle_scale,
                fingerprint,
                generation: AtomicU64::new(0),
                default_target: self.default_target,
                default_preload_budget: self.default_preload_budget,
                plan_cache: PlanCache::new(),
                preloads: Mutex::new(HashMap::new()),
            }),
        }
    }
}

struct ServerInner {
    model: Model,
    /// The store fronted by the shared shard cache; all session reads —
    /// preload fills and generation streams — go through here.
    cached_source: Arc<dyn ShardSource>,
    shard_cache: Arc<ShardCache>,
    scheduler: IoScheduler,
    hw: HwProfile,
    flash: FlashModel,
    /// Behind a lock so a re-profiled table can be installed at runtime
    /// ([`StiServer::set_importance`]); plans derived from the old table are
    /// dropped at the same time.
    importance: RwLock<ImportanceProfile>,
    bitwidths: Vec<Bitwidth>,
    widths: Vec<usize>,
    throttle_scale: f64,
    fingerprint: String,
    /// Bumped by [`StiServer::invalidate_plans`] and folded into every
    /// [`PlanKey`], so a session that raced an invalidation inserts its
    /// stale plan (and preload buffer) under an unreachable key instead of
    /// repopulating the cleared caches. Plans and preload buffers are keyed
    /// identically, so a plan can never be paired with a buffer built for a
    /// different generation.
    generation: AtomicU64,
    default_target: SimTime,
    default_preload_budget: u64,
    plan_cache: PlanCache,
    /// One immutable, shared preload buffer per plan key (read-mostly state:
    /// built once under the lock, then only read through `Arc`s).
    preloads: Mutex<HashMap<PlanKey, Arc<PreloadBuffer>>>,
}

impl ServerInner {
    fn plan_key(&self, target: SimTime, preload_budget: u64) -> PlanKey {
        let model = format!("{}@g{}", self.fingerprint, self.generation.load(Ordering::SeqCst));
        PlanKey::new(model, target, preload_budget, &self.widths, &self.bitwidths)
    }

    /// Resolves (plan, preload buffer) for a knob combination through both
    /// caches, planning and filling at most once per combination.
    fn resolve(
        &self,
        target: SimTime,
        preload_budget: u64,
    ) -> Result<(Arc<ExecutionPlan>, Arc<PreloadBuffer>), PipelineError> {
        let key = self.plan_key(target, preload_budget);
        let plan = self.plan_cache.get_or_plan(&key, || {
            plan_two_stage(
                &self.hw,
                &self.importance.read(),
                target,
                preload_budget,
                &self.widths,
                &self.bitwidths,
            )
        });

        if let Some(buffer) = self.preloads.lock().get(&key).cloned() {
            return Ok((plan, buffer));
        }
        // Fill outside the map lock: preload fills read the (cached) store,
        // and sessions resolving other knob sets must not wait behind that.
        let mut buffer = PreloadBuffer::new(preload_budget);
        for &(id, bw) in &plan.preload {
            let blob = self.cached_source.load(ShardKey::new(id, bw))?;
            buffer.insert(id, blob)?;
        }
        let buffer = Arc::new(buffer);
        let mut preloads = self.preloads.lock();
        // First fill wins a race; fills are deterministic, so both are equal.
        let shared = preloads.entry(key).or_insert(buffer).clone();
        Ok((plan, shared))
    }
}

/// A multi-session serving runtime: owns the model and every shareable
/// resource, hands out [`Session`]s.
pub struct StiServer {
    inner: Arc<ServerInner>,
}

impl StiServer {
    /// Starts building a server for a model whose shards live in `source`,
    /// on a device described by `hw`/`flash`, with shard importance already
    /// profiled (one-time, per model, §3.2).
    pub fn builder(
        model: Model,
        source: Arc<dyn ShardSource>,
        hw: HwProfile,
        flash: FlashModel,
        importance: ImportanceProfile,
    ) -> StiServerBuilder {
        let widths = dynabert_widths_for(model.config().heads);
        StiServerBuilder {
            model,
            source,
            hw,
            flash,
            importance,
            default_target: SimTime::from_ms(200),
            default_preload_budget: 1 << 20,
            bitwidths: Bitwidth::ALL.to_vec(),
            widths,
            throttle_scale: 0.0,
            io_workers: 1,
            shard_cache_bytes: 4 << 20,
        }
    }

    /// Opens a session with the server's default knobs.
    ///
    /// # Errors
    ///
    /// Fails if preload shards cannot be loaded from the store.
    pub fn session(&self) -> Result<Session, PipelineError> {
        self.session_with(self.inner.default_target, self.inner.default_preload_budget)
    }

    /// Opens a session with explicit knobs. The plan and preload buffer are
    /// resolved through the shared caches: the first session with a given
    /// knob combination plans and fills, later ones attach for free.
    ///
    /// # Errors
    ///
    /// Fails if preload shards cannot be loaded from the store.
    pub fn session_with(
        &self,
        target: SimTime,
        preload_budget: u64,
    ) -> Result<Session, PipelineError> {
        let (plan, preload) = self.inner.resolve(target, preload_budget)?;
        Ok(Session { inner: self.inner.clone(), target, preload_budget, plan, preload })
    }

    /// The model's resident parameters in bytes (shared across all
    /// sessions, unlike per-engine copies).
    pub fn resident_bytes(&self) -> usize {
        self.inner.model.resident_byte_size()
    }

    /// Plan-cache effectiveness counters.
    pub fn plan_stats(&self) -> PlanCacheStats {
        self.inner.plan_cache.stats()
    }

    /// Shard-cache effectiveness counters.
    pub fn shard_stats(&self) -> ShardCacheStats {
        self.inner.shard_cache.stats()
    }

    /// IO-scheduler accounting (requests, bytes, simulated flash busy time,
    /// observed queue depth).
    pub fn io_stats(&self) -> IoSchedulerStats {
        self.inner.scheduler.stats()
    }

    /// Number of distinct knob combinations currently planned.
    pub fn cached_plans(&self) -> usize {
        self.inner.plan_cache.len()
    }

    /// Installs a re-profiled importance table and drops every plan derived
    /// from the old one (via [`StiServer::invalidate_plans`]). Sessions
    /// already open keep their current plan until they change knobs.
    pub fn set_importance(&self, importance: ImportanceProfile) {
        *self.inner.importance.write() = importance;
        self.invalidate_plans();
    }

    /// Drops every cached plan, preload buffer, and cached shard blob,
    /// forcing the next session (or knob change) to replan and re-read.
    /// Called by [`StiServer::set_importance`]; call it directly when the
    /// backing store's blobs were regenerated out-of-band. Sessions already
    /// open keep executing their old plan until they change knobs.
    pub fn invalidate_plans(&self) {
        // Bump the generation *first*: resolutions already in flight then
        // land under a key no future lookup uses, rather than racing the
        // clears below and resurrecting stale state.
        self.inner.generation.fetch_add(1, Ordering::SeqCst);
        self.inner.plan_cache.clear();
        self.inner.preloads.lock().clear();
        self.inner.shard_cache.clear();
    }
}

impl std::fmt::Debug for StiServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StiServer")
            .field("fingerprint", &self.inner.fingerprint)
            .field("cached_plans", &self.cached_plans())
            .finish()
    }
}

/// One app's handle onto a [`StiServer`]: its latency/memory knobs plus
/// shared references to the resolved plan and preload buffer.
///
/// Sessions are `Send + Sync`; `infer`/`generate` take `&self`, so one
/// session can serve engagements from multiple threads, and many sessions
/// can run concurrently against one server.
pub struct Session {
    inner: Arc<ServerInner>,
    target: SimTime,
    preload_budget: u64,
    plan: Arc<ExecutionPlan>,
    preload: Arc<PreloadBuffer>,
}

impl Session {
    /// The session's execution plan.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// The session's target latency.
    pub fn target(&self) -> SimTime {
        self.target
    }

    /// Bytes held by the (shared) preload buffer this session executes
    /// against.
    pub fn preload_used(&self) -> u64 {
        self.preload.used_bytes()
    }

    /// Retargets the session: resolves the plan for the new `T` through the
    /// shared caches (replanning only if no session used these knobs
    /// before, §3.2).
    ///
    /// # Errors
    ///
    /// Fails if new preload shards cannot be loaded.
    pub fn set_target(&mut self, target: SimTime) -> Result<(), PipelineError> {
        let (plan, preload) = self.inner.resolve(target, self.preload_budget)?;
        self.target = target;
        self.plan = plan;
        self.preload = preload;
        Ok(())
    }

    /// Changes the session's preload budget `|S|`, resolving through the
    /// shared caches like [`Session::set_target`].
    ///
    /// # Errors
    ///
    /// Fails if new preload shards cannot be loaded.
    pub fn set_preload_budget(&mut self, bytes: u64) -> Result<(), PipelineError> {
        let (plan, preload) = self.inner.resolve(self.target, bytes)?;
        self.preload_budget = bytes;
        self.plan = plan;
        self.preload = preload;
        Ok(())
    }

    /// Executes one engagement over the planned pipeline, streaming through
    /// the server's shared IO scheduler.
    ///
    /// # Errors
    ///
    /// Fails on storage errors or plan/model mismatch.
    pub fn infer(&self, tokens: &[u32]) -> Result<Inference, PipelineError> {
        let inner = &*self.inner;
        let executor = PipelineExecutor::new(
            &inner.model,
            inner.cached_source.clone(),
            inner.flash,
            &inner.hw,
        )
        .with_throttle(inner.throttle_scale);
        let channel = inner.scheduler.channel();
        let outcome = executor.execute_on(&channel, &self.plan, &self.preload, tokens)?;
        Ok(Inference {
            class: outcome.class,
            probabilities: outcome.probabilities.clone(),
            submodel: self.plan.shape,
            outcome,
        })
    }

    /// Generative extension: greedily decodes `steps` tokens after
    /// `prompt`, streaming the submodel once through the shared shard cache
    /// and reusing it every step (same amortization as
    /// [`StiEngine::generate`](crate::engine::StiEngine::generate)).
    ///
    /// # Errors
    ///
    /// Fails if any planned shard cannot be loaded.
    pub fn generate(
        &self,
        prompt: &[u32],
        steps: usize,
    ) -> Result<GenerationOutcome, PipelineError> {
        let inner = &*self.inner;
        let (submodel, loaded_bytes) =
            assemble_plan_submodel(&inner.model, &self.plan, &self.preload, &*inner.cached_source)?;
        let generation = sti_transformer::decoder::generate(&inner.model, &submodel, prompt, steps);
        let per_step = inner.hw.t_comp(self.plan.shape.width) * self.plan.shape.depth as u64;
        Ok(GenerationOutcome {
            tokens: generation.tokens,
            generated: generation.generated,
            first_step: self.plan.predicted.makespan,
            per_step,
            loaded_bytes,
        })
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("target", &self.target)
            .field("preload_budget", &self.preload_budget)
            .field("shape", &self.plan.shape)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sti_device::DeviceProfile;
    use sti_nlp::{Task, TaskKind};
    use sti_quant::QuantConfig;
    use sti_storage::MemStore;
    use sti_transformer::ModelConfig;

    fn server() -> StiServer {
        let cfg = ModelConfig::tiny();
        let task = Task::build(TaskKind::Sst2, cfg.clone(), 4, 4);
        let dev = DeviceProfile::odroid_n2();
        let hw = HwProfile::measure(&dev, &cfg, &QuantConfig::default());
        let source =
            Arc::new(MemStore::build(task.model(), &Bitwidth::ALL, &QuantConfig::default()));
        let importance = ImportanceProfile::from_scores(
            cfg.layers,
            cfg.heads,
            (0..cfg.total_shards()).map(|i| 0.5 + (i % 5) as f64 * 0.01).collect(),
            0.45,
        );
        StiServer::builder(task.model().clone(), source, hw, dev.flash, importance)
            .target(SimTime::from_ms(300))
            .preload_budget(64 << 10)
            .widths(&[2, 4])
            .build()
    }

    #[test]
    fn sessions_share_one_plan_per_knob_set() {
        let srv = server();
        let a = srv.session().unwrap();
        let b = srv.session().unwrap();
        assert!(Arc::ptr_eq(&a.plan, &b.plan), "same knobs must share the plan");
        assert!(Arc::ptr_eq(&a.preload, &b.preload), "and the preload buffer");
        let stats = srv.plan_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(srv.cached_plans(), 1);
    }

    #[test]
    fn distinct_knobs_get_distinct_plans() {
        let srv = server();
        let a = srv.session_with(SimTime::from_ms(300), 64 << 10).unwrap();
        let b = srv.session_with(SimTime::from_ms(1_000), 64 << 10).unwrap();
        assert!(!Arc::ptr_eq(&a.plan, &b.plan));
        assert!(b.plan().shape.shard_count() >= a.plan().shape.shard_count());
        assert_eq!(srv.cached_plans(), 2);
    }

    #[test]
    fn infer_matches_session_plan() {
        let srv = server();
        let s = srv.session().unwrap();
        let inf = s.infer(&[1, 2, 3]).unwrap();
        assert_eq!(inf.probabilities.len(), 2);
        assert!(inf.class < 2);
        assert_eq!(inf.submodel, s.plan().shape);
    }

    #[test]
    fn retargeting_reuses_cached_plans() {
        let srv = server();
        let mut s = srv.session().unwrap();
        let original = s.plan.clone();
        s.set_target(SimTime::from_ms(1_000)).unwrap();
        s.set_target(SimTime::from_ms(300)).unwrap();
        assert!(Arc::ptr_eq(&s.plan, &original), "returning to old knobs hits the cache");
        // 300ms twice (miss + hit) and 1000ms once (miss).
        assert_eq!(srv.plan_stats().misses, 2);
    }

    #[test]
    fn set_importance_changes_subsequent_plans() {
        let srv = server();
        let before = srv.session().unwrap();
        // A sharply skewed profile: later shards dominate, reversing the
        // upgrade order the flat-ish default profile produced.
        let cfg = ModelConfig::tiny();
        let skewed = ImportanceProfile::from_scores(
            cfg.layers,
            cfg.heads,
            (0..cfg.total_shards()).map(|i| 0.3 + i as f64 * 0.04).collect(),
            0.45,
        );
        srv.set_importance(skewed);
        let after = srv.session().unwrap();
        assert!(!Arc::ptr_eq(&before.plan, &after.plan));
        assert_eq!(srv.plan_stats().misses, 2, "new table must force a replan");
    }

    #[test]
    fn invalidation_forces_replan_for_new_sessions() {
        let srv = server();
        let s1 = srv.session().unwrap();
        srv.invalidate_plans();
        let s2 = srv.session().unwrap();
        assert!(!Arc::ptr_eq(&s1.plan, &s2.plan), "invalidation must drop the entry");
        assert_eq!(s1.plan(), s2.plan(), "replanning is deterministic");
        assert_eq!(srv.plan_stats().misses, 2);
    }

    #[test]
    fn repeated_inference_warms_the_shard_cache() {
        let srv = server();
        // Zero preload: every engagement streams its full submodel.
        let s = srv.session_with(SimTime::from_ms(300), 0).unwrap();
        s.infer(&[1, 2]).unwrap();
        let cold = srv.shard_stats();
        s.infer(&[1, 2]).unwrap();
        let warm = srv.shard_stats();
        assert!(warm.hits > cold.hits, "second engagement must reuse blobs");
    }

    #[test]
    fn generation_streams_once_and_is_deterministic() {
        let srv = server();
        let s = srv.session().unwrap();
        let g = s.generate(&[1, 2], 5).unwrap();
        assert_eq!(g.generated, 5);
        assert_eq!(g.tokens.len(), 7);
        assert!(g.per_step <= g.first_step);
        assert_eq!(s.generate(&[1, 2], 5).unwrap().tokens, g.tokens);
    }

    #[test]
    fn io_stats_track_scheduler_traffic() {
        let srv = server();
        // Zero preload: every engagement streams its full submodel.
        let s = srv.session_with(SimTime::from_ms(300), 0).unwrap();
        let inf = s.infer(&[7]).unwrap();
        let stats = srv.io_stats();
        assert_eq!(stats.requests, s.plan().layers.len() as u64);
        assert_eq!(stats.bytes, inf.outcome.loaded_bytes);
        assert!(stats.sim_flash_busy > SimTime::ZERO);
    }
}
