//! The pipeline executor: overlapped IO and computation over a plan.
//!
//! Execution follows §5.5 of the paper: layers run in order; each layer's
//! selected shard versions arrive as one IO job on the IO thread (started as
//! early as possible, never reordered — AIB planning already guarantees
//! arrival order matches execution order), are decompressed into the working
//! buffer, and computed while later layers' IO streams in. Preloaded shards
//! skip IO entirely.
//!
//! Computation is *real* (actual forward passes over dequantized weights);
//! the per-layer timeline is accounted in simulated device time so that
//! latency results are deterministic and host-independent.

use std::collections::HashMap;
use std::sync::Arc;

use sti_device::{FlashModel, HwProfile, SimTime};
use sti_planner::schedule::{simulate_pipeline, LayerTiming, SchedulePrediction};
use sti_planner::ExecutionPlan;
use sti_quant::QuantizedBlob;
use sti_storage::{IoChannel, IoScheduler, LayerRequest, ShardKey, ShardSource};
use sti_tensor::softmax::softmax_slice;
use sti_tensor::stats::argmax;
use sti_transformer::layer::layer_forward;
use sti_transformer::{AssembledSubmodel, Model, ShardId, ShardWeights};

use crate::buffers::{PreloadBuffer, WorkingBuffer};
use crate::error::PipelineError;

/// The result of one pipeline execution.
#[derive(Debug, Clone)]
pub struct ExecutionOutcome {
    /// Raw class logits.
    pub logits: Vec<f32>,
    /// Predicted class (argmax).
    pub class: usize,
    /// Softmax probabilities.
    pub probabilities: Vec<f32>,
    /// Simulated per-layer timeline (IO, stalls, makespan).
    pub timeline: SchedulePrediction,
    /// Bytes streamed from storage (excludes preloaded shards).
    pub loaded_bytes: u64,
    /// Peak decompressed bytes held by the working buffer.
    pub peak_working_bytes: usize,
    /// Host wall-clock duration of the execution (informational).
    pub wall: std::time::Duration,
}

/// Executes plans against a model's resident parameters and a shard source.
pub struct PipelineExecutor<'a> {
    model: &'a Model,
    source: Arc<dyn ShardSource>,
    flash: FlashModel,
    hw: &'a HwProfile,
    throttle_scale: f64,
}

impl<'a> PipelineExecutor<'a> {
    /// Creates an executor.
    ///
    /// `model` provides the resident parameters (embedding, layer norms,
    /// biases, classifier); shard weights come exclusively from `source` and
    /// the preload buffer.
    pub fn new(
        model: &'a Model,
        source: Arc<dyn ShardSource>,
        flash: FlashModel,
        hw: &'a HwProfile,
    ) -> Self {
        Self { model, source, flash, hw, throttle_scale: 0.0 }
    }

    /// Maps simulated IO delay onto wall-clock sleeping (1.0 = real-time
    /// device emulation; 0.0 = run at host speed). Experiments use 0.0.
    pub fn with_throttle(mut self, scale: f64) -> Self {
        self.throttle_scale = scale;
        self
    }

    /// Runs one inference over `plan` with a private, single-engagement IO
    /// lane (the seed behaviour: every execution owns its IO thread).
    ///
    /// # Errors
    ///
    /// Fails if the plan does not match the model shape, a shard is missing
    /// from both the preload buffer and the store, or storage reads fail.
    pub fn execute(
        &self,
        plan: &ExecutionPlan,
        preload: &PreloadBuffer,
        tokens: &[u32],
    ) -> Result<ExecutionOutcome, PipelineError> {
        let scheduler =
            IoScheduler::spawn(self.source.clone(), self.flash, 1, self.throttle_scale, None);
        let channel = scheduler.channel();
        self.execute_on(&channel, plan, preload, tokens)
    }

    /// Runs one inference over `plan`, streaming shards through `channel` —
    /// an IO lane borrowed from a shared [`IoScheduler`], so N concurrent
    /// engagements multiplex one flash model and one shard cache instead of
    /// each spawning private IO state.
    ///
    /// The simulated timeline and byte accounting depend only on the plan
    /// and the device model, never on what the scheduler's other channels
    /// are doing: outcomes are identical whether the engagement runs alone
    /// or concurrently (see `sti_storage::scheduler` docs).
    ///
    /// # Errors
    ///
    /// Fails if the plan does not match the model shape, a shard is missing
    /// from both the preload buffer and the store, or storage reads fail.
    pub fn execute_on(
        &self,
        channel: &IoChannel,
        plan: &ExecutionPlan,
        preload: &PreloadBuffer,
        tokens: &[u32],
    ) -> Result<ExecutionOutcome, PipelineError> {
        let has_request = self.issue_on(channel, plan, preload)?;
        self.complete_on(channel, plan, preload, tokens, &has_request)
    }

    /// The issue half of [`PipelineExecutor::execute_on`]: queues every
    /// streamed layer's IO on `channel` up front (the channel services them
    /// back-to-back in FIFO order, exactly like the single IO channel of
    /// the schedule model) and returns the per-layer "did this layer issue
    /// a request" mask that [`PipelineExecutor::complete_on`] consumes.
    /// Event-driven hosts call the halves separately so a whole wave of
    /// engagements can enqueue before the flash component services any of
    /// it.
    ///
    /// # Errors
    ///
    /// Fails if the plan does not match the model shape or the scheduler
    /// shut down.
    pub fn issue_on(
        &self,
        channel: &IoChannel,
        plan: &ExecutionPlan,
        preload: &PreloadBuffer,
    ) -> Result<Vec<bool>, PipelineError> {
        let cfg = self.model.config();
        if plan.shape.depth > cfg.layers {
            return Err(PipelineError::PlanMismatch(format!(
                "plan depth {} exceeds model depth {}",
                plan.shape.depth, cfg.layers
            )));
        }
        let mut has_request = Vec::with_capacity(plan.layers.len());
        for pl in &plan.layers {
            let pending: Vec<(u16, sti_quant::Bitwidth)> = pl
                .items()
                .filter(|&(slice, _)| !preload.contains(ShardId::new(pl.layer, slice)))
                .collect();
            has_request.push(!pending.is_empty());
            if !pending.is_empty() {
                channel.request(LayerRequest { layer: pl.layer, items: pending })?;
            }
        }
        Ok(has_request)
    }

    /// The compute half of [`PipelineExecutor::execute_on`]: receives each
    /// issued layer's completion off `channel` (in issue order) and runs
    /// the forward pass over it. `has_request` is
    /// [`PipelineExecutor::issue_on`]'s mask for the same `(channel, plan,
    /// preload)` triple.
    ///
    /// # Errors
    ///
    /// Fails if a shard is missing from both the preload buffer and the
    /// store, or storage reads fail.
    pub fn complete_on(
        &self,
        channel: &IoChannel,
        plan: &ExecutionPlan,
        preload: &PreloadBuffer,
        tokens: &[u32],
        has_request: &[bool],
    ) -> Result<ExecutionOutcome, PipelineError> {
        let start = std::time::Instant::now();
        let cfg = self.model.config().clone();
        let mut working = WorkingBuffer::new(cfg.clone());
        let mut x = self.model.embedding().embed(tokens);
        let mut timings = Vec::with_capacity(plan.layers.len());
        let mut loaded_bytes = 0u64;

        for (l, pl) in plan.layers.iter().enumerate() {
            let (owned, io_delay) = if has_request[l] {
                let loaded = channel.recv()?;
                debug_assert_eq!(loaded.layer, pl.layer, "IO completions must arrive in order");
                loaded_bytes += loaded.bytes;
                // Blobs arrive as `Arc`s: under shared-IO batching this map
                // aliases the payload other engagements received.
                let map: HashMap<u16, Arc<QuantizedBlob>> = loaded.blobs.into_iter().collect();
                (map, loaded.io_delay)
            } else {
                (HashMap::new(), SimTime::ZERO)
            };

            let mut blob_refs: Vec<&QuantizedBlob> = Vec::with_capacity(pl.slices.len());
            for &slice in &pl.slices {
                let id = ShardId::new(pl.layer, slice);
                let blob = preload
                    .get(id)
                    .or_else(|| owned.get(&slice).map(Arc::as_ref))
                    .ok_or_else(|| {
                        PipelineError::PlanMismatch(format!(
                            "shard {id} neither preloaded nor loaded"
                        ))
                    })?;
                blob_refs.push(blob);
            }

            let shards = working.assemble(&blob_refs)?;
            let shard_refs: Vec<&ShardWeights> = shards.iter().collect();
            let slice_idxs: Vec<usize> = pl.slices.iter().map(|&s| s as usize).collect();
            let resident = &self.model.layers()[l].resident;
            x = layer_forward(&x, &shard_refs, &slice_idxs, resident, &cfg);

            timings.push(LayerTiming { io: io_delay, comp: self.hw.t_comp(pl.slices.len()) });
        }

        let logits = self.model.classifier().logits(&x);
        let mut probabilities = logits.clone();
        softmax_slice(&mut probabilities);
        let class = argmax(&logits).expect("at least one class");
        let timeline = simulate_pipeline(&timings, SimTime::ZERO);

        Ok(ExecutionOutcome {
            logits,
            class,
            probabilities,
            timeline,
            loaded_bytes,
            peak_working_bytes: working.peak_bytes(),
            wall: start.elapsed(),
        })
    }
}

/// Materializes a plan's full submodel as dequantized weights, taking each
/// shard from the preload buffer when resident and from `source` otherwise.
///
/// Returns the submodel plus the serialized bytes streamed from `source`
/// (preloaded shards cost nothing — they were paid for at plan time). Both
/// the single-app engine and server sessions use this for the generative
/// path, where the submodel is streamed once and reused every step.
///
/// # Errors
///
/// Fails if any planned shard is missing from both the buffer and `source`.
pub fn assemble_plan_submodel(
    model: &Model,
    plan: &ExecutionPlan,
    preload: &PreloadBuffer,
    source: &dyn ShardSource,
) -> Result<(AssembledSubmodel, u64), PipelineError> {
    let cfg = model.config().clone();
    let mut loaded_bytes = 0u64;
    let mut submodel = AssembledSubmodel::new();
    for pl in &plan.layers {
        let mut shards = Vec::with_capacity(pl.slices.len());
        for (slice, bw) in pl.items() {
            let id = ShardId::new(pl.layer, slice);
            let blob = match preload.get(id) {
                Some(blob) => blob.clone(),
                None => {
                    let key = ShardKey::new(id, bw);
                    loaded_bytes += source.size_bytes(key)?;
                    source.load(key)?
                }
            };
            shards.push(ShardWeights::from_flat(&blob.dequantize(), &cfg));
        }
        submodel.push_layer(pl.slices.iter().map(|&s| s as usize).collect(), shards);
    }
    Ok((submodel, loaded_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sti_device::DeviceProfile;
    use sti_nlp::{Task, TaskKind};
    use sti_planner::{plan_compute, plan_io, ImportanceProfile, IoPlanInputs};
    use sti_quant::{Bitwidth, QuantConfig};
    use sti_storage::MemStore;
    use sti_transformer::ModelConfig;

    struct Fixture {
        task: Task,
        hw: HwProfile,
        flash: FlashModel,
        source: Arc<MemStore>,
        importance: ImportanceProfile,
    }

    fn fixture() -> Fixture {
        let cfg = ModelConfig::tiny();
        let task = Task::build(TaskKind::Sst2, cfg.clone(), 4, 4);
        let dev = DeviceProfile::odroid_n2();
        let hw = HwProfile::measure(&dev, &cfg, &QuantConfig::default());
        let source =
            Arc::new(MemStore::build(task.model(), &Bitwidth::ALL, &QuantConfig::default()));
        // Synthetic flat importance (profiling is exercised elsewhere).
        let importance = ImportanceProfile::from_scores(
            cfg.layers,
            cfg.heads,
            (0..cfg.total_shards()).map(|i| 0.5 + i as f64 * 1e-3).collect(),
            0.4,
        );
        Fixture { task, hw, flash: dev.flash, source, importance }
    }

    fn make_plan(f: &Fixture, target_ms: u64, preload_bytes: u64) -> sti_planner::ExecutionPlan {
        let choice =
            plan_compute(&f.hw, f.importance.layers(), SimTime::from_ms(target_ms), &[2, 4]);
        plan_io(&IoPlanInputs {
            hw: &f.hw,
            importance: &f.importance,
            choice,
            target: SimTime::from_ms(target_ms),
            preload_bytes,
            bitwidths: &Bitwidth::ALL,
        })
    }

    fn fill_preload(f: &Fixture, plan: &sti_planner::ExecutionPlan) -> PreloadBuffer {
        let mut buf = PreloadBuffer::new(plan.preload_budget_bytes);
        for &(id, bw) in &plan.preload {
            let blob = f.source.load(sti_storage::ShardKey::new(id, bw)).unwrap();
            buf.insert(id, blob).unwrap();
        }
        buf
    }

    #[test]
    fn executes_a_cold_start_plan() {
        let f = fixture();
        let plan = make_plan(&f, 400, 0);
        let exec = PipelineExecutor::new(f.task.model(), f.source.clone(), f.flash, &f.hw);
        let out = exec.execute(&plan, &PreloadBuffer::new(0), &[1, 2, 3]).unwrap();
        assert_eq!(out.logits.len(), 2);
        assert!(out.loaded_bytes > 0);
        assert!((out.probabilities.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert_eq!(out.timeline.layers.len(), plan.shape.depth);
    }

    #[test]
    fn preload_reduces_streamed_bytes_and_warmup() {
        let f = fixture();
        let cold_plan = make_plan(&f, 400, 0);
        let warm_plan = make_plan(&f, 400, 1 << 20);
        assert!(!warm_plan.preload.is_empty());
        let exec = PipelineExecutor::new(f.task.model(), f.source.clone(), f.flash, &f.hw);

        let cold = exec.execute(&cold_plan, &PreloadBuffer::new(0), &[5, 6]).unwrap();
        let warm = exec.execute(&warm_plan, &fill_preload(&f, &warm_plan), &[5, 6]).unwrap();
        assert!(warm.loaded_bytes < cold.loaded_bytes);
        assert!(warm.timeline.layers[0].stall <= cold.timeline.layers[0].stall);
    }

    #[test]
    fn executor_prediction_matches_plan_for_full_loads() {
        let f = fixture();
        let plan = make_plan(&f, 400, 0);
        let exec = PipelineExecutor::new(f.task.model(), f.source.clone(), f.flash, &f.hw);
        let out = exec.execute(&plan, &PreloadBuffer::new(0), &[7]).unwrap();
        // Measured makespan should be close to the planner's conservative
        // prediction (real blobs are never larger than the profiled max).
        assert!(out.timeline.makespan <= plan.predicted.makespan);
    }

    #[test]
    fn missing_shard_version_fails_cleanly() {
        let f = fixture();
        let plan = make_plan(&f, 400, 0);
        // Remove one shard version the plan needs.
        let pl = &plan.layers[0];
        let key = sti_storage::ShardKey::new(ShardId::new(pl.layer, pl.slices[0]), pl.bitwidths[0]);
        f.source.remove(key);
        let exec = PipelineExecutor::new(f.task.model(), f.source.clone(), f.flash, &f.hw);
        let err = exec.execute(&plan, &PreloadBuffer::new(0), &[1]).unwrap_err();
        assert!(matches!(err, PipelineError::Storage(_)));
    }

    #[test]
    fn deterministic_outcomes() {
        let f = fixture();
        let plan = make_plan(&f, 300, 0);
        let exec = PipelineExecutor::new(f.task.model(), f.source.clone(), f.flash, &f.hw);
        let a = exec.execute(&plan, &PreloadBuffer::new(0), &[9, 9]).unwrap();
        let b = exec.execute(&plan, &PreloadBuffer::new(0), &[9, 9]).unwrap();
        assert_eq!(a.logits, b.logits);
        assert_eq!(a.timeline, b.timeline);
    }

    #[test]
    fn full_fidelity_plan_matches_direct_forward() {
        let f = fixture();
        let cfg = f.task.model().config().clone();
        // Hand-build a full-grid, full-fidelity plan.
        let layers: Vec<sti_planner::PlannedLayer> = (0..cfg.layers as u16)
            .map(|layer| sti_planner::PlannedLayer {
                layer,
                slices: (0..cfg.heads as u16).collect(),
                bitwidths: vec![Bitwidth::Full; cfg.heads],
            })
            .collect();
        let plan = sti_planner::ExecutionPlan {
            shape: sti_planner::SubmodelShape::new(cfg.layers, cfg.heads),
            layers,
            preload: vec![],
            target: SimTime::from_ms(10_000),
            preload_budget_bytes: 0,
            aib_satisfied: true,
            predicted: simulate_pipeline(&[], SimTime::ZERO),
        };
        let exec = PipelineExecutor::new(f.task.model(), f.source.clone(), f.flash, &f.hw);
        let out = exec.execute(&plan, &PreloadBuffer::new(0), &[3, 4, 5]).unwrap();
        let direct = f.task.model().forward_full(&[3, 4, 5]);
        for (a, b) in out.logits.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-4, "pipeline and direct forward disagree: {a} vs {b}");
        }
    }
}
