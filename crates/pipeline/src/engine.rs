//! The app-facing STI engine (paper §3.2–§3.3).
//!
//! An app links the engine, names the model it expects to execute, its
//! target latency `T`, and a preload-buffer size `|S|`. The engine plans a
//! pipeline **once** and executes it repeatedly; replanning happens only
//! when the app (or OS) changes `T` or `|S|`.

use std::sync::Arc;

use sti_device::{FlashModel, HwProfile, SimTime};
use sti_planner::compute_plan::dynabert_widths_for;
use sti_planner::{plan_two_stage, ExecutionPlan, ImportanceProfile};
use sti_quant::Bitwidth;
use sti_storage::{ShardKey, ShardSource};
use sti_transformer::Model;

use crate::buffers::PreloadBuffer;
use crate::error::PipelineError;
use crate::executor::{ExecutionOutcome, PipelineExecutor};

/// The result of one generative (decoder) engagement.
#[derive(Debug, Clone)]
pub struct GenerationOutcome {
    /// Prompt plus generated continuation.
    pub tokens: Vec<u32>,
    /// Number of tokens generated (excludes the prompt).
    pub generated: usize,
    /// Simulated latency of the first step (streams the submodel through
    /// the pipeline, same as a classification).
    pub first_step: SimTime,
    /// Simulated compute-only latency of each subsequent step (weights are
    /// already resident in the working set).
    pub per_step: SimTime,
    /// Bytes streamed from storage (paid once, amortized over all steps).
    pub loaded_bytes: u64,
}

/// The result of one engine inference.
#[derive(Debug, Clone)]
pub struct Inference {
    /// Predicted class.
    pub class: usize,
    /// Softmax class probabilities.
    pub probabilities: Vec<f32>,
    /// The executed submodel shape.
    pub submodel: sti_planner::SubmodelShape,
    /// Full execution details (timeline, bytes, buffers).
    pub outcome: ExecutionOutcome,
}

/// Builder for [`StiEngine`].
pub struct StiEngineBuilder {
    model: Model,
    source: Arc<dyn ShardSource>,
    hw: HwProfile,
    flash: FlashModel,
    importance: ImportanceProfile,
    target: SimTime,
    preload_budget: u64,
    bitwidths: Vec<Bitwidth>,
    widths: Vec<usize>,
    throttle_scale: f64,
}

impl StiEngineBuilder {
    /// Target latency `T` (default 200 ms).
    pub fn target(mut self, target: SimTime) -> Self {
        self.target = target;
        self
    }

    /// Preload-buffer budget `|S|` in bytes (default 1 MiB).
    pub fn preload_budget(mut self, bytes: u64) -> Self {
        self.preload_budget = bytes;
        self
    }

    /// Fidelity versions available in the store (default: all).
    pub fn bitwidths(mut self, bitwidths: &[Bitwidth]) -> Self {
        self.bitwidths = bitwidths.to_vec();
        self
    }

    /// Allowed submodel widths (default: DynaBERT's {3, 6, 9, 12}).
    pub fn widths(mut self, widths: &[usize]) -> Self {
        self.widths = widths.to_vec();
        self
    }

    /// Wall-clock throttling of simulated IO (demonstrations only).
    pub fn throttle(mut self, scale: f64) -> Self {
        self.throttle_scale = scale;
        self
    }

    /// Plans the initial pipeline, fills the preload buffer, and returns the
    /// ready engine.
    ///
    /// # Errors
    ///
    /// Fails if preload shards cannot be loaded from the store.
    pub fn build(self) -> Result<StiEngine, PipelineError> {
        let mut engine = StiEngine {
            model: self.model,
            source: self.source,
            hw: self.hw,
            flash: self.flash,
            importance: self.importance,
            target: self.target,
            preload_budget: self.preload_budget,
            bitwidths: self.bitwidths,
            widths: self.widths,
            throttle_scale: self.throttle_scale,
            plan: None,
            preload: PreloadBuffer::new(self.preload_budget),
        };
        engine.replan()?;
        Ok(engine)
    }
}

/// The STI engine: plan once, execute repeatedly (paper §3.2).
pub struct StiEngine {
    model: Model,
    source: Arc<dyn ShardSource>,
    hw: HwProfile,
    flash: FlashModel,
    importance: ImportanceProfile,
    target: SimTime,
    preload_budget: u64,
    bitwidths: Vec<Bitwidth>,
    widths: Vec<usize>,
    throttle_scale: f64,
    plan: Option<ExecutionPlan>,
    preload: PreloadBuffer,
}

impl StiEngine {
    /// Starts building an engine for a model whose shards live in `source`,
    /// on a device described by `hw`/`flash`, with shard importance already
    /// profiled (a one-time, per-model effort, §3.2).
    pub fn builder(
        model: Model,
        source: Arc<dyn ShardSource>,
        hw: HwProfile,
        flash: FlashModel,
        importance: ImportanceProfile,
    ) -> StiEngineBuilder {
        let widths = dynabert_widths_for(model.config().heads);
        StiEngineBuilder {
            model,
            source,
            hw,
            flash,
            importance,
            target: SimTime::from_ms(200),
            preload_budget: 1 << 20,
            bitwidths: Bitwidth::ALL.to_vec(),
            widths,
            throttle_scale: 0.0,
        }
    }

    /// The current execution plan.
    pub fn plan(&self) -> &ExecutionPlan {
        self.plan.as_ref().expect("engine always holds a plan after build")
    }

    /// The current target latency.
    pub fn target(&self) -> SimTime {
        self.target
    }

    /// Bytes currently held in the preload buffer.
    pub fn preload_used(&self) -> u64 {
        self.preload.used_bytes()
    }

    /// The model's resident parameters (embedding, norms, classifier) in
    /// bytes — memory the engine keeps regardless of the preload buffer.
    pub fn resident_bytes(&self) -> usize {
        self.model.resident_byte_size()
    }

    /// Updates the target latency and replans (paper: replanning happens
    /// only when `T` or `|S|` changes).
    ///
    /// # Errors
    ///
    /// Fails if new preload shards cannot be loaded.
    pub fn set_target(&mut self, target: SimTime) -> Result<(), PipelineError> {
        self.target = target;
        self.replan()
    }

    /// Updates the preload budget and replans. Growing the budget lets the
    /// planner redistribute freed IO bandwidth to higher-fidelity versions
    /// (the back-to-back execution scenario of §3.3); shrinking evicts.
    ///
    /// # Errors
    ///
    /// Fails if new preload shards cannot be loaded.
    pub fn set_preload_budget(&mut self, bytes: u64) -> Result<(), PipelineError> {
        self.preload_budget = bytes;
        self.replan()
    }

    /// Executes one inference over the planned pipeline.
    ///
    /// # Errors
    ///
    /// Fails on storage errors or plan/model mismatch.
    pub fn infer(&self, tokens: &[u32]) -> Result<Inference, PipelineError> {
        let plan = self.plan();
        let executor =
            PipelineExecutor::new(&self.model, self.source.clone(), self.flash, &self.hw)
                .with_throttle(self.throttle_scale);
        let outcome = executor.execute(plan, &self.preload, tokens)?;
        Ok(Inference {
            class: outcome.class,
            probabilities: outcome.probabilities.clone(),
            submodel: plan.shape,
            outcome,
        })
    }

    /// Generative extension (paper §3.4 future work): greedily decodes
    /// `steps` tokens after `prompt` over the planned submodel.
    ///
    /// The submodel's shards are streamed **once** (the same pipelined IO a
    /// classification pays) and then reused for every step, so per-step cost
    /// is compute-only — the amortization that makes STI's economics carry
    /// over to generation.
    ///
    /// # Errors
    ///
    /// Fails if any planned shard cannot be loaded.
    pub fn generate(
        &self,
        prompt: &[u32],
        steps: usize,
    ) -> Result<GenerationOutcome, PipelineError> {
        let plan = self.plan();
        let (submodel, loaded_bytes) = crate::executor::assemble_plan_submodel(
            &self.model,
            plan,
            &self.preload,
            &*self.source,
        )?;
        let generation = sti_transformer::decoder::generate(&self.model, &submodel, prompt, steps);
        let per_step = self.hw.t_comp(plan.shape.width) * plan.shape.depth as u64;
        Ok(GenerationOutcome {
            tokens: generation.tokens,
            generated: generation.generated,
            first_step: plan.predicted.makespan,
            per_step,
            loaded_bytes,
        })
    }

    fn replan(&mut self) -> Result<(), PipelineError> {
        let plan = plan_two_stage(
            &self.hw,
            &self.importance,
            self.target,
            self.preload_budget,
            &self.widths,
            &self.bitwidths,
        );
        self.preload.resize(self.preload_budget);
        // Refill: drop shards no longer wanted, admit newly planned ones at
        // their planned fidelity.
        for id in self.preload.resident_ids() {
            let still_wanted = plan.preload.iter().any(|&(pid, bw)| {
                pid == id && self.preload.get(id).map(|b| b.bitwidth()) == Some(bw)
            });
            if !still_wanted {
                self.preload.remove(id);
            }
        }
        for &(id, bw) in &plan.preload {
            if self.preload.get(id).map(|b| b.bitwidth()) == Some(bw) {
                continue;
            }
            let blob = self.source.load(ShardKey::new(id, bw))?;
            self.preload.insert(id, blob)?;
        }
        self.plan = Some(plan);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sti_device::DeviceProfile;
    use sti_nlp::{Task, TaskKind};
    use sti_quant::QuantConfig;
    use sti_storage::MemStore;
    use sti_transformer::ModelConfig;

    fn engine() -> StiEngine {
        let cfg = ModelConfig::tiny();
        let task = Task::build(TaskKind::Sst2, cfg.clone(), 4, 4);
        let dev = DeviceProfile::odroid_n2();
        let hw = HwProfile::measure(&dev, &cfg, &QuantConfig::default());
        let source =
            Arc::new(MemStore::build(task.model(), &Bitwidth::ALL, &QuantConfig::default()));
        let importance = ImportanceProfile::from_scores(
            cfg.layers,
            cfg.heads,
            (0..cfg.total_shards()).map(|i| 0.5 + (i % 5) as f64 * 0.01).collect(),
            0.45,
        );
        StiEngine::builder(task.model().clone(), source, hw, dev.flash, importance)
            .target(SimTime::from_ms(300))
            .preload_budget(64 << 10)
            .widths(&[2, 4])
            .build()
            .unwrap()
    }

    #[test]
    fn build_fills_preload_to_plan() {
        let e = engine();
        assert_eq!(e.plan().preload.len(), e.preload.len());
        assert!(e.preload_used() <= 64 << 10);
    }

    #[test]
    fn infer_returns_probabilities() {
        let e = engine();
        let inf = e.infer(&[1, 2, 3]).unwrap();
        assert_eq!(inf.probabilities.len(), 2);
        assert!(inf.class < 2);
        assert_eq!(inf.submodel, e.plan().shape);
    }

    #[test]
    fn plan_once_execute_repeatedly() {
        let e = engine();
        let p1 = e.plan().clone();
        let _ = e.infer(&[1]).unwrap();
        let _ = e.infer(&[2]).unwrap();
        assert_eq!(&p1, e.plan(), "inference must not replan");
    }

    #[test]
    fn set_target_replans() {
        let mut e = engine();
        let before = e.plan().shape;
        e.set_target(SimTime::from_ms(1_000)).unwrap();
        let after = e.plan().shape;
        assert!(after.shard_count() >= before.shard_count());
    }

    #[test]
    fn growing_preload_budget_caches_more() {
        let mut e = engine();
        let before = e.preload_used();
        e.set_preload_budget(1 << 20).unwrap();
        assert!(e.preload_used() >= before);
        // Shrinking evicts back below the cap.
        e.set_preload_budget(8 << 10).unwrap();
        assert!(e.preload_used() <= 8 << 10);
    }

    #[test]
    fn generation_amortizes_streaming() {
        let e = engine();
        let g = e.generate(&[1, 2], 5).unwrap();
        assert_eq!(g.generated, 5);
        assert_eq!(g.tokens.len(), 7);
        assert!(g.per_step <= g.first_step, "later steps must be IO-free");
        // Deterministic.
        assert_eq!(e.generate(&[1, 2], 5).unwrap().tokens, g.tokens);
    }

    #[test]
    fn inference_agrees_with_plan_fidelity() {
        let e = engine();
        let inf = e.infer(&[4, 4]).unwrap();
        // Streamed bytes + preloaded bytes cover every planned shard.
        assert!(inf.outcome.loaded_bytes > 0 || !e.plan().preload.is_empty());
    }
}
