//! Pipeline error type.

use std::fmt;

use sti_device::SimTime;
use sti_storage::StorageError;

/// Errors surfaced while executing a pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// A shard load failed.
    Storage(StorageError),
    /// The plan references weights inconsistent with the model.
    PlanMismatch(String),
    /// The preload buffer cannot hold a shard it was asked to admit.
    PreloadOverflow {
        /// Bytes the shard needs.
        needed: u64,
        /// Bytes still free.
        available: u64,
    },
    /// Admission control rejected the engagement: even the best plan's
    /// predicted *contended* latency under the current co-runner count
    /// misses the requested SLO.
    AdmissionRejected {
        /// Predicted contended latency of the best candidate plan.
        predicted: SimTime,
        /// The SLO the session asked for.
        slo: SimTime,
        /// Co-runners the prediction assumed (sessions open at admission).
        co_runners: usize,
    },
    /// The infer-time backpressure gate shed the engagement: against the
    /// live flash-queue backlog, its predicted contended latency misses the
    /// session SLO even at the best admissible queue delay.
    Backpressure {
        /// Best achievable predicted contended latency (at the gate's
        /// maximum admissible delay; the prediction *now* for pure shed).
        predicted: SimTime,
        /// The SLO the session carries.
        slo: SimTime,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Storage(e) => write!(f, "pipeline storage failure: {e}"),
            PipelineError::PlanMismatch(why) => write!(f, "plan/model mismatch: {why}"),
            PipelineError::PreloadOverflow { needed, available } => {
                write!(f, "preload buffer overflow: need {needed} bytes, {available} free")
            }
            PipelineError::AdmissionRejected { predicted, slo, co_runners } => {
                write!(
                    f,
                    "admission rejected: predicted contended latency {predicted} misses the \
                     {slo} SLO with {co_runners} co-runners"
                )
            }
            PipelineError::Backpressure { predicted, slo } => {
                write!(
                    f,
                    "backpressure shed: predicted contended latency {predicted} misses the \
                     {slo} SLO against the live flash backlog"
                )
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for PipelineError {
    fn from(e: StorageError) -> Self {
        PipelineError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = PipelineError::PreloadOverflow { needed: 10, available: 5 };
        assert!(e.to_string().contains("overflow"));
        let e = PipelineError::PlanMismatch("depth".into());
        assert!(e.to_string().contains("depth"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PipelineError>();
    }
}
