//! Quantized weight groups (shards).

use crate::bitpack;
use crate::bitwidth::Bitwidth;
use crate::centroid::CentroidDictionary;
use crate::error::QuantError;
use crate::gaussian::GaussianFit;

/// Parameters of the quantization process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantConfig {
    /// Log-likelihood threshold below which a weight is an outlier and kept
    /// in FP32. The paper uses `-4.0` following GOBO.
    pub outlier_log_likelihood: f32,
}

impl Default for QuantConfig {
    fn default() -> Self {
        Self { outlier_log_likelihood: -4.0 }
    }
}

/// A weight group compressed with Gaussian outlier-aware dictionary
/// quantization — the on-disk and in-preload-buffer representation of one
/// shard fidelity version.
///
/// For [`Bitwidth::Full`] the group is stored as raw little-endian `f32`
/// bytes with no dictionary; for compressed bitwidths it stores packed
/// `k`-bit centroid indexes, the `2^k` FP32 centroids, and the FP32 outlier
/// table `(offset, value)`.
///
/// ```
/// use sti_quant::{Bitwidth, QuantConfig, QuantizedBlob};
///
/// let weights: Vec<f32> = (0..128).map(|i| ((i * 37) % 97) as f32 / 97.0 - 0.5).collect();
/// let blob = QuantizedBlob::quantize(&weights, Bitwidth::B6, &QuantConfig::default());
/// assert!(blob.byte_size() < weights.len() * 4);
/// assert_eq!(blob.dequantize().len(), weights.len());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedBlob {
    bitwidth: Bitwidth,
    len: u32,
    /// Packed k-bit indexes, or raw f32 LE bytes for full fidelity.
    packed: Vec<u8>,
    /// FP32 centroid dictionary (empty for full fidelity).
    centroids: Vec<f32>,
    /// `(offset, original value)` for outliers (empty for full fidelity).
    outliers: Vec<(u32, f32)>,
}

impl QuantizedBlob {
    /// Quantizes `weights` to the requested bitwidth.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    pub fn quantize(weights: &[f32], bitwidth: Bitwidth, config: &QuantConfig) -> Self {
        assert!(!weights.is_empty(), "cannot quantize an empty weight group");
        if bitwidth.is_full() {
            let mut packed = Vec::with_capacity(weights.len() * 4);
            for w in weights {
                packed.extend_from_slice(&w.to_le_bytes());
            }
            return Self {
                bitwidth,
                len: weights.len() as u32,
                packed,
                centroids: Vec::new(),
                outliers: Vec::new(),
            };
        }

        let fit = GaussianFit::fit(weights);
        let outlier_idx = fit.outlier_indexes(weights, config.outlier_log_likelihood);
        let outlier_set: std::collections::HashSet<u32> = outlier_idx.iter().copied().collect();

        let inliers: Vec<f32> = weights
            .iter()
            .enumerate()
            .filter(|(i, _)| !outlier_set.contains(&(*i as u32)))
            .map(|(_, &w)| w)
            .collect();
        // If everything is an outlier (degenerate), fall back to using all
        // weights as the dictionary population.
        let population: &[f32] = if inliers.is_empty() { weights } else { &inliers };
        let dict = CentroidDictionary::build(population, bitwidth.centroid_count());

        // Outliers are stored as index 0 in the packed array (for bit
        // alignment, as in the paper) and patched from the table on
        // decompression.
        let indexes: Vec<u16> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| if outlier_set.contains(&(i as u32)) { 0 } else { dict.assign(w) })
            .collect();
        let packed = bitpack::pack(&indexes, bitwidth.bits());
        let outliers = outlier_idx.iter().map(|&i| (i, weights[i as usize])).collect();

        Self {
            bitwidth,
            len: weights.len() as u32,
            packed,
            centroids: dict.centroids().to_vec(),
            outliers,
        }
    }

    /// Reassembles a blob from stored parts (used by the on-disk decoder).
    ///
    /// # Errors
    ///
    /// Returns an error if the parts are inconsistent (bad lengths, outlier
    /// offsets out of range).
    pub fn from_parts(
        bitwidth: Bitwidth,
        len: u32,
        packed: Vec<u8>,
        centroids: Vec<f32>,
        outliers: Vec<(u32, f32)>,
    ) -> Result<Self, QuantError> {
        if len == 0 {
            return Err(QuantError::EmptyInput);
        }
        if bitwidth.is_full() {
            if packed.len() != len as usize * 4 {
                return Err(QuantError::IndexOutOfRange {
                    index: packed.len(),
                    dictionary: len as usize * 4,
                });
            }
        } else {
            let needed = bitwidth.payload_bytes(len as usize);
            if packed.len() < needed {
                return Err(QuantError::IndexOutOfRange {
                    index: packed.len(),
                    dictionary: needed,
                });
            }
            if centroids.len() != bitwidth.centroid_count() {
                return Err(QuantError::IndexOutOfRange {
                    index: centroids.len(),
                    dictionary: bitwidth.centroid_count(),
                });
            }
        }
        for &(offset, _) in &outliers {
            if offset >= len {
                return Err(QuantError::OutlierOffsetOutOfRange {
                    offset: offset as usize,
                    len: len as usize,
                });
            }
        }
        Ok(Self { bitwidth, len, packed, centroids, outliers })
    }

    /// Decompresses into a freshly allocated vector.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len as usize];
        self.dequantize_into(&mut out);
        out
    }

    /// Decompresses into a caller-provided buffer — the working-buffer hot
    /// path: substitute dictionary indexes with centroids, then patch
    /// outliers.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn dequantize_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.len as usize, "dequantize buffer length mismatch");
        if self.bitwidth.is_full() {
            for (slot, chunk) in out.iter_mut().zip(self.packed.chunks_exact(4)) {
                *slot = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            }
            return;
        }
        let mut indexes = vec![0u16; self.len as usize];
        bitpack::unpack_into(&self.packed, self.bitwidth.bits(), &mut indexes);
        for (slot, &idx) in out.iter_mut().zip(&indexes) {
            *slot = self.centroids[idx as usize];
        }
        for &(offset, value) in &self.outliers {
            out[offset as usize] = value;
        }
    }

    /// The blob's bitwidth.
    pub fn bitwidth(&self) -> Bitwidth {
        self.bitwidth
    }

    /// Number of weights in the group.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the group is empty (never true for valid blobs).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Serialized payload size in bytes: packed indexes plus the centroid
    /// dictionary plus the outlier table. This is the quantity the flash
    /// model charges IO for and the preload buffer counts against its
    /// capacity.
    pub fn byte_size(&self) -> usize {
        self.packed.len() + self.centroids.len() * 4 + self.outliers.len() * 8
    }

    /// Fraction of weights preserved as outliers.
    pub fn outlier_fraction(&self) -> f64 {
        self.outliers.len() as f64 / self.len as f64
    }

    /// Packed index bytes (raw f32 bytes for full fidelity).
    pub fn packed(&self) -> &[u8] {
        &self.packed
    }

    /// Centroid dictionary (empty for full fidelity).
    pub fn centroids(&self) -> &[f32] {
        &self.centroids
    }

    /// Outlier table.
    pub fn outliers(&self) -> &[(u32, f32)] {
        &self.outliers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sti_tensor::{stats, Rng};

    fn gaussian_weights(seed: u64, n: usize) -> Vec<f32> {
        let mut rng = Rng::new(seed);
        let mut xs = vec![0.0f32; n];
        rng.fill_gaussian(&mut xs, 0.0, 0.12);
        // Plant a few outliers like real transformer weight matrices have.
        xs[n / 3] = 1.4;
        xs[n / 2] = -1.2;
        xs
    }

    #[test]
    fn full_fidelity_round_trips_exactly() {
        let weights = gaussian_weights(1, 512);
        let blob = QuantizedBlob::quantize(&weights, Bitwidth::Full, &QuantConfig::default());
        assert_eq!(blob.dequantize(), weights);
        assert_eq!(blob.byte_size(), 512 * 4);
    }

    #[test]
    fn outliers_preserved_exactly_at_any_bitwidth() {
        let weights = gaussian_weights(2, 900);
        for bw in Bitwidth::COMPRESSED {
            let blob = QuantizedBlob::quantize(&weights, bw, &QuantConfig::default());
            let restored = blob.dequantize();
            assert_eq!(restored[300], 1.4, "outlier lost at {bw}");
            assert_eq!(restored[450], -1.2, "outlier lost at {bw}");
        }
    }

    #[test]
    fn reconstruction_error_decreases_with_bitwidth() {
        let weights = gaussian_weights(3, 4096);
        let mut prev = f32::INFINITY;
        for bw in Bitwidth::ALL {
            let blob = QuantizedBlob::quantize(&weights, bw, &QuantConfig::default());
            let err = stats::mse(&weights, &blob.dequantize());
            assert!(err <= prev, "mse grew from {prev} to {err} at {bw}");
            prev = err;
        }
        assert_eq!(prev, 0.0, "full fidelity must be lossless");
    }

    #[test]
    fn compressed_size_shrinks_with_fewer_bits() {
        let weights = gaussian_weights(4, 4096);
        let mut prev = usize::MAX;
        for bw in [Bitwidth::B6, Bitwidth::B5, Bitwidth::B4, Bitwidth::B3, Bitwidth::B2] {
            let blob = QuantizedBlob::quantize(&weights, bw, &QuantConfig::default());
            assert!(blob.byte_size() < prev, "size did not shrink at {bw}");
            prev = blob.byte_size();
        }
        // 2-bit should be roughly 16x smaller than fp32 (modulo dictionary
        // and outlier overhead).
        assert!(prev < 4096 * 4 / 10, "2-bit blob too large: {prev}");
    }

    #[test]
    fn outlier_fraction_is_small_on_gaussian_weights() {
        let weights = gaussian_weights(5, 8192);
        let blob = QuantizedBlob::quantize(&weights, Bitwidth::B3, &QuantConfig::default());
        assert!(blob.outlier_fraction() < 0.02, "fraction {}", blob.outlier_fraction());
        assert!(blob.outlier_fraction() > 0.0, "planted outliers should be detected");
    }

    #[test]
    fn mean_is_approximately_preserved() {
        // Lossy compression must preserve the weight distribution (paper
        // argues this is why mixed-bitwidth shards compose).
        let weights = gaussian_weights(6, 8192);
        let blob = QuantizedBlob::quantize(&weights, Bitwidth::B2, &QuantConfig::default());
        let restored = blob.dequantize();
        assert!((stats::mean(&weights) - stats::mean(&restored)).abs() < 5e-3);
        assert!((stats::std_dev(&weights) - stats::std_dev(&restored)).abs() < 2e-2);
    }

    #[test]
    fn from_parts_validates_consistency() {
        let weights = gaussian_weights(7, 64);
        let blob = QuantizedBlob::quantize(&weights, Bitwidth::B4, &QuantConfig::default());
        let ok = QuantizedBlob::from_parts(
            blob.bitwidth(),
            blob.len() as u32,
            blob.packed().to_vec(),
            blob.centroids().to_vec(),
            blob.outliers().to_vec(),
        );
        assert_eq!(ok.unwrap(), blob);

        assert!(QuantizedBlob::from_parts(Bitwidth::B4, 0, vec![], vec![], vec![]).is_err());
        assert!(
            QuantizedBlob::from_parts(Bitwidth::B4, 64, vec![0; 2], vec![0.0; 16], vec![]).is_err()
        );
        assert!(QuantizedBlob::from_parts(
            Bitwidth::B4,
            64,
            blob.packed().to_vec(),
            blob.centroids().to_vec(),
            vec![(64, 1.0)],
        )
        .is_err());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantize_rejects_empty_input() {
        let _ = QuantizedBlob::quantize(&[], Bitwidth::B2, &QuantConfig::default());
    }

    #[test]
    fn dequantize_into_matches_dequantize() {
        let weights = gaussian_weights(8, 300);
        let blob = QuantizedBlob::quantize(&weights, Bitwidth::B5, &QuantConfig::default());
        let mut buf = vec![0.0f32; 300];
        blob.dequantize_into(&mut buf);
        assert_eq!(buf, blob.dequantize());
    }
}
