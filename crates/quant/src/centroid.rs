//! Equal-population centroid dictionaries.
//!
//! Non-outlier weights are sorted by value and divided into `2^k` clusters of
//! (as close as possible to) equal population; the arithmetic mean of each
//! cluster becomes its centroid (paper §6). Because cluster boundaries are
//! value-ordered, assigning a weight to its centroid is a binary search over
//! the boundary table.

/// An equal-population dictionary: sorted centroids plus the cluster upper
/// boundaries used for assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct CentroidDictionary {
    centroids: Vec<f32>,
    /// `boundaries[i]` is the maximum value assigned to cluster `i`
    /// (inclusive); the last cluster has an implicit `+inf` boundary.
    boundaries: Vec<f32>,
}

impl CentroidDictionary {
    /// Builds a dictionary of `clusters` centroids from `values`.
    ///
    /// Values need not be sorted. If there are fewer distinct values than
    /// clusters, some clusters are empty and reuse their neighbor's centroid —
    /// harmless, they are simply never assigned.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or `clusters == 0`.
    pub fn build(values: &[f32], clusters: usize) -> Self {
        assert!(!values.is_empty(), "cannot build a dictionary from no values");
        assert!(clusters > 0, "dictionary needs at least one cluster");
        let mut sorted: Vec<f32> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("weights must not be NaN"));

        let n = sorted.len();
        let mut centroids = Vec::with_capacity(clusters);
        let mut boundaries = Vec::with_capacity(clusters.saturating_sub(1));
        let mut prev_centroid = sorted[0];
        for c in 0..clusters {
            let start = c * n / clusters;
            let end = ((c + 1) * n / clusters).max(start);
            if start >= end {
                // Empty cluster: reuse the previous centroid; give it a
                // zero-width boundary so nothing maps to it.
                centroids.push(prev_centroid);
                if c < clusters - 1 {
                    boundaries.push(*boundaries.last().unwrap_or(&sorted[0]));
                }
                continue;
            }
            let slice = &sorted[start..end];
            let centroid = slice.iter().map(|&x| x as f64).sum::<f64>() as f32 / slice.len() as f32;
            centroids.push(centroid);
            prev_centroid = centroid;
            if c < clusters - 1 {
                boundaries.push(sorted[end - 1]);
            }
        }
        Self { centroids, boundaries }
    }

    /// Reconstructs a dictionary from stored centroids (boundaries are only
    /// needed for assignment at quantization time, not for decompression).
    pub fn from_centroids(centroids: Vec<f32>) -> Self {
        let boundaries = centroids.windows(2).map(|pair| (pair[0] + pair[1]) / 2.0).collect();
        Self { centroids, boundaries }
    }

    /// The centroid values.
    pub fn centroids(&self) -> &[f32] {
        &self.centroids
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.centroids.len()
    }

    /// Whether the dictionary is empty (never true for built dictionaries).
    pub fn is_empty(&self) -> bool {
        self.centroids.is_empty()
    }

    /// Index of the cluster `value` belongs to.
    pub fn assign(&self, value: f32) -> u16 {
        // partition_point returns the first boundary >= value is false...
        // we want the first cluster whose boundary >= value.
        let idx = self.boundaries.partition_point(|&b| b < value);
        idx as u16
    }

    /// Centroid for a stored index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn lookup(&self, index: u16) -> f32 {
        self.centroids[index as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sti_tensor::Rng;

    #[test]
    fn equal_population_on_uniform_data() {
        let values: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let dict = CentroidDictionary::build(&values, 4);
        assert_eq!(dict.len(), 4);
        // Clusters of 250 consecutive integers: means are ~124.5, 374.5, ...
        let expected = [124.5, 374.5, 624.5, 874.5];
        for (c, e) in dict.centroids().iter().zip(expected) {
            assert!((c - e).abs() < 1.0, "centroid {c} vs expected {e}");
        }
    }

    #[test]
    fn assignment_maps_values_to_nearest_population_cluster() {
        let values: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let dict = CentroidDictionary::build(&values, 4);
        assert_eq!(dict.assign(0.0), 0);
        assert_eq!(dict.assign(99.0), 3);
        assert_eq!(dict.assign(30.0), 1);
        // Out-of-range values clamp to the edge clusters.
        assert_eq!(dict.assign(-100.0), 0);
        assert_eq!(dict.assign(1e6), 3);
    }

    #[test]
    fn quantization_error_shrinks_with_more_clusters() {
        let mut rng = Rng::new(4);
        let mut values = vec![0.0f32; 4096];
        rng.fill_gaussian(&mut values, 0.0, 1.0);
        let mut prev_mse = f32::INFINITY;
        for bits in [2u32, 3, 4, 5, 6] {
            let dict = CentroidDictionary::build(&values, 1 << bits);
            let mse: f32 = values
                .iter()
                .map(|&v| {
                    let err = v - dict.lookup(dict.assign(v));
                    err * err
                })
                .sum::<f32>()
                / values.len() as f32;
            assert!(mse < prev_mse, "mse did not shrink at {bits} bits: {mse} >= {prev_mse}");
            prev_mse = mse;
        }
    }

    #[test]
    fn handles_fewer_values_than_clusters() {
        let dict = CentroidDictionary::build(&[1.0, 2.0], 8);
        assert_eq!(dict.len(), 8);
        let idx = dict.assign(1.0);
        assert!((dict.lookup(idx) - 1.0).abs() < 1.5);
    }

    #[test]
    fn from_centroids_round_trips_lookup() {
        let dict = CentroidDictionary::from_centroids(vec![-1.0, 0.0, 1.0]);
        assert_eq!(dict.lookup(0), -1.0);
        assert_eq!(dict.lookup(2), 1.0);
        assert_eq!(dict.assign(0.9), 2);
        assert_eq!(dict.assign(-0.9), 0);
    }

    #[test]
    #[should_panic(expected = "no values")]
    fn build_rejects_empty_input() {
        let _ = CentroidDictionary::build(&[], 4);
    }
}
