//! # sti-quant
//!
//! Gaussian outlier-aware dictionary quantization (GOBO, Zadeh et al., MICRO
//! '20) as used by STI (§4.2 / §6 of the paper) to store every model shard in
//! multiple fidelity versions.
//!
//! The scheme: fit the weight population of a group (a shard) to a Gaussian;
//! weights whose log-likelihood falls below a threshold (paper: `-4`) are
//! *outliers* and kept verbatim in FP32; the remaining ~99.9% are sorted and
//! split into `2^k` equal-population clusters whose arithmetic means become
//! the `k`-bit dictionary (*centroids*). A quantized shard then stores packed
//! `k`-bit centroid indexes plus the small outlier table, shrinking IO by
//! roughly `32/k` while preserving the original weight distribution — which is
//! what lets shards of *different* bitwidths execute together in one submodel.
//!
//! ```
//! use sti_quant::{Bitwidth, QuantConfig, QuantizedBlob};
//!
//! let weights: Vec<f32> = (0..256).map(|i| (i as f32 / 17.0).sin()).collect();
//! let blob = QuantizedBlob::quantize(&weights, Bitwidth::B4, &QuantConfig::default());
//! let restored = blob.dequantize();
//! assert_eq!(restored.len(), weights.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitpack;
pub mod bitwidth;
pub mod centroid;
pub mod error;
pub mod gaussian;
pub mod shardq;
pub mod uniform;

pub use bitwidth::Bitwidth;
pub use error::QuantError;
pub use gaussian::GaussianFit;
pub use shardq::{QuantConfig, QuantizedBlob};
pub use uniform::UniformBlob;
