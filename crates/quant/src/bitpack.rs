//! Packing of k-bit indexes into a byte stream.
//!
//! Indexes are written little-endian within a growing bit cursor: index `i`
//! occupies bits `[i·k, (i+1)·k)` of the stream, low bits first. This keeps
//! pack/unpack branch-free per element and independent of platform endianness.

/// Packs `values` as consecutive `bits`-wide little-endian fields.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 16, or if any value does not fit in
/// `bits` bits.
pub fn pack(values: &[u16], bits: u8) -> Vec<u8> {
    assert!((1..=16).contains(&bits), "pack supports 1..=16 bits, got {bits}");
    let mask = (1u32 << bits) - 1;
    let mut out = vec![0u8; (values.len() * bits as usize).div_ceil(8)];
    let mut bit_pos = 0usize;
    for &v in values {
        assert!((v as u32) <= mask, "value {v} does not fit in {bits} bits");
        let byte = bit_pos / 8;
        let shift = bit_pos % 8;
        let chunk = (v as u32) << shift;
        out[byte] |= (chunk & 0xFF) as u8;
        if shift + bits as usize > 8 {
            out[byte + 1] |= ((chunk >> 8) & 0xFF) as u8;
        }
        if shift + bits as usize > 16 {
            out[byte + 2] |= ((chunk >> 16) & 0xFF) as u8;
        }
        bit_pos += bits as usize;
    }
    out
}

/// Unpacks `count` consecutive `bits`-wide fields from `bytes`.
///
/// # Panics
///
/// Panics if `bits` is out of range or `bytes` is too short for `count`
/// fields.
pub fn unpack(bytes: &[u8], bits: u8, count: usize) -> Vec<u16> {
    let mut out = vec![0u16; count];
    unpack_into(bytes, bits, &mut out);
    out
}

/// Unpacks into a caller-provided slice (length = field count).
///
/// This is the hot path of shard decompression; it avoids re-allocating the
/// index buffer for every layer.
///
/// # Panics
///
/// Panics if `bits` is out of range or `bytes` is too short.
pub fn unpack_into(bytes: &[u8], bits: u8, out: &mut [u16]) {
    assert!((1..=16).contains(&bits), "unpack supports 1..=16 bits, got {bits}");
    let needed = (out.len() * bits as usize).div_ceil(8);
    assert!(bytes.len() >= needed, "packed buffer too short: {} bytes, need {needed}", bytes.len());
    let mask = (1u32 << bits) - 1;
    let mut bit_pos = 0usize;
    for slot in out.iter_mut() {
        let byte = bit_pos / 8;
        let shift = bit_pos % 8;
        let mut chunk = bytes[byte] as u32 >> shift;
        if shift + bits as usize > 8 {
            chunk |= (bytes[byte + 1] as u32) << (8 - shift);
        }
        if shift + bits as usize > 16 {
            chunk |= (bytes[byte + 2] as u32) << (16 - shift);
        }
        *slot = (chunk & mask) as u16;
        bit_pos += bits as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_simple() {
        let values = vec![0u16, 1, 2, 3, 3, 2, 1, 0];
        let packed = pack(&values, 2);
        assert_eq!(packed.len(), 2);
        assert_eq!(unpack(&packed, 2, values.len()), values);
    }

    #[test]
    fn round_trip_odd_bitwidths() {
        for bits in [3u8, 5, 6, 7] {
            let max = (1u16 << bits) - 1;
            let values: Vec<u16> = (0..97).map(|i| (i * 31) as u16 % (max + 1)).collect();
            let packed = pack(&values, bits);
            assert_eq!(unpack(&packed, bits, values.len()), values, "bits={bits}");
        }
    }

    #[test]
    fn packed_size_matches_formula() {
        let values = vec![1u16; 100];
        assert_eq!(pack(&values, 3).len(), (100 * 3usize).div_ceil(8));
        assert_eq!(pack(&values, 5).len(), (100 * 5usize).div_ceil(8));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn rejects_oversized_values() {
        let _ = pack(&[4], 2);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn unpack_rejects_short_buffers() {
        let _ = unpack(&[0u8; 1], 6, 10);
    }

    #[test]
    fn empty_input_round_trips() {
        let packed = pack(&[], 4);
        assert!(packed.is_empty());
        assert!(unpack(&packed, 4, 0).is_empty());
    }

    proptest! {
        #[test]
        fn prop_round_trip(values in proptest::collection::vec(0u16..64, 0..512), bits in 6u8..=6) {
            let packed = pack(&values, bits);
            prop_assert_eq!(unpack(&packed, bits, values.len()), values);
        }

        #[test]
        fn prop_round_trip_any_bitwidth(bits in 1u8..=12, len in 0usize..300, seed in any::<u64>()) {
            let max = (1u32 << bits) as u64;
            let values: Vec<u16> = (0..len)
                .map(|i| ((seed.wrapping_mul(6364136223846793005).wrapping_add((i as u64).wrapping_mul(1442695040888963407))) % max) as u16)
                .collect();
            let packed = pack(&values, bits);
            prop_assert_eq!(unpack(&packed, bits, values.len()), values);
        }
    }
}
