//! Uniform (min–max linear) quantization — the comparison scheme.
//!
//! The paper chooses GOBO-style dictionary quantization because it preserves
//! the weight distribution without fine-tuning (§4.2), unlike fixed-point /
//! linear schemes. This module implements the linear alternative so the
//! claim is measurable: same bit budget, values snapped to `2^k` evenly
//! spaced levels between the observed min and max. Outlier-heavy transformer
//! weights stretch the range and waste levels on empty tails — the failure
//! mode GOBO's equal-population centroids avoid (quantified in the
//! `quantizer` ablation of `sti-bench`).

use crate::bitpack;
use crate::bitwidth::Bitwidth;

/// A weight group quantized with uniform min–max levels.
#[derive(Debug, Clone, PartialEq)]
pub struct UniformBlob {
    bitwidth: Bitwidth,
    len: u32,
    min: f32,
    max: f32,
    packed: Vec<u8>,
}

impl UniformBlob {
    /// Quantizes `weights` to `2^bitwidth` evenly spaced levels.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or `bitwidth` is [`Bitwidth::Full`]
    /// (uniform quantization of full-precision weights is the identity; use
    /// the GOBO blob for that).
    pub fn quantize(weights: &[f32], bitwidth: Bitwidth) -> Self {
        assert!(!weights.is_empty(), "cannot quantize an empty weight group");
        assert!(!bitwidth.is_full(), "full fidelity has no uniform levels");
        let min = weights.iter().copied().fold(f32::INFINITY, f32::min);
        let max = weights.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let levels = (bitwidth.centroid_count() - 1) as f32;
        let span = (max - min).max(1e-12);
        let indexes: Vec<u16> = weights
            .iter()
            .map(|&w| (((w - min) / span * levels).round() as u16).min(levels as u16))
            .collect();
        let packed = bitpack::pack(&indexes, bitwidth.bits());
        Self { bitwidth, len: weights.len() as u32, min, max, packed }
    }

    /// Reconstructs the weights.
    pub fn dequantize(&self) -> Vec<f32> {
        let levels = (self.bitwidth.centroid_count() - 1) as f32;
        let span = self.max - self.min;
        let indexes = bitpack::unpack(&self.packed, self.bitwidth.bits(), self.len as usize);
        indexes.into_iter().map(|i| self.min + span * (i as f32 / levels)).collect()
    }

    /// Serialized payload bytes (packed indexes + the two range floats).
    pub fn byte_size(&self) -> usize {
        self.packed.len() + 8
    }

    /// The blob's bitwidth.
    pub fn bitwidth(&self) -> Bitwidth {
        self.bitwidth
    }

    /// Number of weights.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the group is empty (never true for valid blobs).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QuantConfig, QuantizedBlob};
    use sti_tensor::{stats, Rng};

    fn gaussian_with_outliers(seed: u64, n: usize) -> Vec<f32> {
        let mut rng = Rng::new(seed);
        let mut xs = vec![0.0f32; n];
        rng.fill_gaussian(&mut xs, 0.0, 0.1);
        xs[n / 4] = 1.8;
        xs[n / 2] = -1.5;
        xs
    }

    #[test]
    fn round_trip_preserves_length_and_range() {
        let weights = gaussian_with_outliers(1, 512);
        let blob = UniformBlob::quantize(&weights, Bitwidth::B4);
        let restored = blob.dequantize();
        assert_eq!(restored.len(), weights.len());
        let (lo, hi) = (-1.5f32, 1.8f32);
        assert!(restored.iter().all(|&x| x >= lo - 1e-4 && x <= hi + 1e-4));
    }

    #[test]
    fn error_shrinks_with_bitwidth() {
        let weights = gaussian_with_outliers(2, 2048);
        let mut prev = f32::INFINITY;
        for bw in Bitwidth::COMPRESSED {
            let err = stats::mse(&weights, &UniformBlob::quantize(&weights, bw).dequantize());
            assert!(err < prev, "mse did not shrink at {bw}");
            prev = err;
        }
    }

    #[test]
    fn gobo_beats_uniform_on_outlier_heavy_weights() {
        // The paper's §4.2 rationale, measured: with heavy-tail outliers the
        // uniform grid wastes levels on empty range while GOBO's
        // equal-population centroids track the mass.
        let weights = gaussian_with_outliers(3, 4096);
        for bw in [Bitwidth::B2, Bitwidth::B3, Bitwidth::B4] {
            let uniform_err =
                stats::mse(&weights, &UniformBlob::quantize(&weights, bw).dequantize());
            let gobo_err = stats::mse(
                &weights,
                &QuantizedBlob::quantize(&weights, bw, &QuantConfig::default()).dequantize(),
            );
            assert!(
                gobo_err < uniform_err / 2.0,
                "{bw}: GOBO {gobo_err} should be far below uniform {uniform_err}"
            );
        }
    }

    #[test]
    fn constant_weights_reconstruct_exactly() {
        let weights = vec![0.25f32; 64];
        let blob = UniformBlob::quantize(&weights, Bitwidth::B2);
        for x in blob.dequantize() {
            assert!((x - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "no uniform levels")]
    fn full_fidelity_is_rejected() {
        let _ = UniformBlob::quantize(&[1.0], Bitwidth::Full);
    }
}
