//! Gaussian fitting and log-likelihood outlier detection.
//!
//! The paper (§6) fits the layer's flattened weights to a single-component
//! Gaussian (they use `sklearn.mixture.GaussianMixture` with one component,
//! which reduces to a plain mean/variance fit) and flags any weight whose
//! log-likelihood under the fit falls below `-4` as an outlier. Outliers are
//! ~0.1–0.2% of weights and are preserved in full FP32.

use sti_tensor::stats;

/// A fitted single-component Gaussian.
///
/// ```
/// use sti_quant::GaussianFit;
///
/// let fit = GaussianFit::fit(&[0.0, 1.0, -1.0, 0.5, -0.5]);
/// assert!(fit.mean().abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianFit {
    mean: f32,
    std: f32,
}

impl GaussianFit {
    /// Fits mean and standard deviation to `samples`.
    ///
    /// A degenerate population (constant, or fewer than two samples) yields a
    /// tiny positive standard deviation so that log-likelihood stays finite.
    pub fn fit(samples: &[f32]) -> Self {
        let mean = stats::mean(samples);
        let std = stats::std_dev(samples).max(1e-8);
        Self { mean, std }
    }

    /// The fitted mean.
    pub fn mean(&self) -> f32 {
        self.mean
    }

    /// The fitted standard deviation (always positive).
    pub fn std(&self) -> f32 {
        self.std
    }

    /// Log-likelihood of `x` under the fitted Gaussian:
    /// `-0.5·ln(2πσ²) − (x−μ)²/(2σ²)`.
    pub fn log_likelihood(&self, x: f32) -> f32 {
        let var = self.std * self.std;
        let norm = -0.5 * (2.0 * std::f32::consts::PI * var).ln();
        let z = x - self.mean;
        norm - z * z / (2.0 * var)
    }

    /// Indexes of samples whose log-likelihood is below `threshold`
    /// (paper default: `-4.0`).
    pub fn outlier_indexes(&self, samples: &[f32], threshold: f32) -> Vec<u32> {
        samples
            .iter()
            .enumerate()
            .filter(|(_, &x)| self.log_likelihood(x) < threshold)
            .map(|(i, _)| i as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sti_tensor::Rng;

    #[test]
    fn fit_recovers_moments() {
        let mut rng = Rng::new(1);
        let mut xs = vec![0.0f32; 20_000];
        rng.fill_gaussian(&mut xs, 0.5, 0.1);
        let fit = GaussianFit::fit(&xs);
        assert!((fit.mean() - 0.5).abs() < 0.01);
        assert!((fit.std() - 0.1).abs() < 0.01);
    }

    #[test]
    fn log_likelihood_peaks_at_mean() {
        let fit = GaussianFit::fit(&[-1.0, 0.0, 1.0]);
        let at_mean = fit.log_likelihood(fit.mean());
        assert!(at_mean > fit.log_likelihood(fit.mean() + fit.std()));
        assert!(at_mean > fit.log_likelihood(fit.mean() - fit.std()));
    }

    #[test]
    fn outliers_found_in_tails() {
        let mut rng = Rng::new(2);
        let mut xs = vec![0.0f32; 10_000];
        rng.fill_gaussian(&mut xs, 0.0, 0.05);
        // Plant two extreme outliers, like the planted non-Gaussian weights
        // in real transformer layers.
        xs[17] = 1.5;
        xs[423] = -2.0;
        let fit = GaussianFit::fit(&xs);
        let outliers = fit.outlier_indexes(&xs, -4.0);
        assert!(outliers.contains(&17));
        assert!(outliers.contains(&423));
        // The threshold of -4 flags only a tiny fraction (paper: 0.14-0.17%).
        assert!(
            (outliers.len() as f64 / xs.len() as f64) < 0.02,
            "too many outliers: {}",
            outliers.len()
        );
    }

    #[test]
    fn degenerate_population_has_finite_likelihood() {
        let fit = GaussianFit::fit(&[3.0, 3.0, 3.0]);
        assert!(fit.std() > 0.0);
        assert!(fit.log_likelihood(3.0).is_finite());
        assert!(fit.log_likelihood(4.0).is_finite());
    }

    #[test]
    fn empty_input_yields_default_fit() {
        let fit = GaussianFit::fit(&[]);
        assert_eq!(fit.mean(), 0.0);
        assert!(fit.std() > 0.0);
    }
}
