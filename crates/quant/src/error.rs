//! Error type for quantization operations.

use std::fmt;

/// Errors produced while quantizing or dequantizing shards.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QuantError {
    /// A bitwidth outside the supported set {2..6, 32} was requested.
    UnsupportedBitwidth(u8),
    /// The weight group was empty.
    EmptyInput,
    /// A packed index referenced a centroid outside the dictionary.
    IndexOutOfRange {
        /// The offending index value.
        index: usize,
        /// The dictionary size it exceeded.
        dictionary: usize,
    },
    /// An outlier's recorded offset exceeded the weight count.
    OutlierOffsetOutOfRange {
        /// The offending offset.
        offset: usize,
        /// Number of weights in the group.
        len: usize,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::UnsupportedBitwidth(bits) => {
                write!(f, "unsupported bitwidth {bits} (supported: 2-6, 32)")
            }
            QuantError::EmptyInput => write!(f, "cannot quantize an empty weight group"),
            QuantError::IndexOutOfRange { index, dictionary } => {
                write!(f, "packed index {index} exceeds dictionary of {dictionary} centroids")
            }
            QuantError::OutlierOffsetOutOfRange { offset, len } => {
                write!(f, "outlier offset {offset} exceeds weight count {len}")
            }
        }
    }
}

impl std::error::Error for QuantError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            QuantError::UnsupportedBitwidth(7).to_string(),
            QuantError::EmptyInput.to_string(),
            QuantError::IndexOutOfRange { index: 9, dictionary: 4 }.to_string(),
            QuantError::OutlierOffsetOutOfRange { offset: 10, len: 5 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QuantError>();
    }
}
