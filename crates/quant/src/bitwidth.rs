//! The fidelity axis: supported shard bitwidths.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::QuantError;

/// A supported shard bitwidth.
///
/// The paper stores each shard in `K` compressed fidelity versions of 2–6
/// bits plus the uncompressed 32-bit original (§4.2: *"N×M×K shards (e.g.
/// N=M=12, K=2…6, 32)"*). Bitwidths outside this set are rejected at
/// construction, so a `Bitwidth` value is always valid.
///
/// ```
/// use sti_quant::Bitwidth;
///
/// assert_eq!(Bitwidth::B4.bits(), 4);
/// assert!(Bitwidth::Full.is_full());
/// assert_eq!(Bitwidth::try_from(6).unwrap(), Bitwidth::B6);
/// assert!(Bitwidth::try_from(7).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Bitwidth {
    /// 2-bit dictionary indexes (16× smaller than FP32).
    B2,
    /// 3-bit dictionary indexes.
    B3,
    /// 4-bit dictionary indexes.
    B4,
    /// 5-bit dictionary indexes.
    B5,
    /// 6-bit dictionary indexes (the paper's highest *quantized* fidelity).
    B6,
    /// Uncompressed 32-bit floats (full fidelity).
    Full,
}

impl Bitwidth {
    /// All supported bitwidths in ascending fidelity order.
    pub const ALL: [Bitwidth; 6] =
        [Bitwidth::B2, Bitwidth::B3, Bitwidth::B4, Bitwidth::B5, Bitwidth::B6, Bitwidth::Full];

    /// The compressed bitwidths only (excludes [`Bitwidth::Full`]).
    pub const COMPRESSED: [Bitwidth; 5] =
        [Bitwidth::B2, Bitwidth::B3, Bitwidth::B4, Bitwidth::B5, Bitwidth::B6];

    /// The smallest supported bitwidth (2-bit).
    pub const MIN: Bitwidth = Bitwidth::B2;

    /// Number of bits per stored weight index.
    pub fn bits(self) -> u8 {
        match self {
            Bitwidth::B2 => 2,
            Bitwidth::B3 => 3,
            Bitwidth::B4 => 4,
            Bitwidth::B5 => 5,
            Bitwidth::B6 => 6,
            Bitwidth::Full => 32,
        }
    }

    /// Whether this is the uncompressed full-fidelity representation.
    pub fn is_full(self) -> bool {
        matches!(self, Bitwidth::Full)
    }

    /// Number of dictionary centroids (`2^k`).
    ///
    /// # Panics
    ///
    /// Panics when called on [`Bitwidth::Full`], which has no dictionary.
    pub fn centroid_count(self) -> usize {
        assert!(!self.is_full(), "full-fidelity shards have no centroid dictionary");
        1usize << self.bits()
    }

    /// Bytes needed to store `len` weights at this bitwidth, *excluding*
    /// dictionary and outlier overhead (those are accounted by the blob).
    pub fn payload_bytes(self, len: usize) -> usize {
        if self.is_full() {
            len * 4
        } else {
            (len * self.bits() as usize).div_ceil(8)
        }
    }

    /// The next higher fidelity, if any.
    pub fn next_up(self) -> Option<Bitwidth> {
        let idx = Self::ALL.iter().position(|&b| b == self).expect("bitwidth in ALL");
        Self::ALL.get(idx + 1).copied()
    }

    /// Compression ratio relative to FP32 (e.g. 16 for 2-bit).
    pub fn compression_ratio(self) -> f64 {
        32.0 / self.bits() as f64
    }
}

impl TryFrom<u8> for Bitwidth {
    type Error = QuantError;

    fn try_from(bits: u8) -> Result<Self, QuantError> {
        match bits {
            2 => Ok(Bitwidth::B2),
            3 => Ok(Bitwidth::B3),
            4 => Ok(Bitwidth::B4),
            5 => Ok(Bitwidth::B5),
            6 => Ok(Bitwidth::B6),
            32 => Ok(Bitwidth::Full),
            other => Err(QuantError::UnsupportedBitwidth(other)),
        }
    }
}

impl fmt::Display for Bitwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_full() {
            write!(f, "full")
        } else {
            write!(f, "{}bit", self.bits())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_sorted_ascending() {
        for pair in Bitwidth::ALL.windows(2) {
            assert!(pair[0] < pair[1]);
            assert!(pair[0].bits() < pair[1].bits());
        }
    }

    #[test]
    fn round_trip_through_u8() {
        for bw in Bitwidth::ALL {
            assert_eq!(Bitwidth::try_from(bw.bits()).unwrap(), bw);
        }
    }

    #[test]
    fn rejects_unsupported_bitwidths() {
        for bits in [0u8, 1, 7, 8, 16, 31, 64] {
            assert!(Bitwidth::try_from(bits).is_err(), "{bits} should be rejected");
        }
    }

    #[test]
    fn payload_bytes_rounds_up() {
        assert_eq!(Bitwidth::B2.payload_bytes(3), 1); // 6 bits -> 1 byte
        assert_eq!(Bitwidth::B2.payload_bytes(4), 1); // 8 bits -> 1 byte
        assert_eq!(Bitwidth::B2.payload_bytes(5), 2); // 10 bits -> 2 bytes
        assert_eq!(Bitwidth::B3.payload_bytes(8), 3); // 24 bits -> 3 bytes
        assert_eq!(Bitwidth::Full.payload_bytes(10), 40);
    }

    #[test]
    fn centroid_count_is_power_of_two() {
        assert_eq!(Bitwidth::B2.centroid_count(), 4);
        assert_eq!(Bitwidth::B6.centroid_count(), 64);
    }

    #[test]
    #[should_panic(expected = "no centroid dictionary")]
    fn centroid_count_panics_on_full() {
        let _ = Bitwidth::Full.centroid_count();
    }

    #[test]
    fn next_up_walks_the_ladder() {
        assert_eq!(Bitwidth::B2.next_up(), Some(Bitwidth::B3));
        assert_eq!(Bitwidth::B6.next_up(), Some(Bitwidth::Full));
        assert_eq!(Bitwidth::Full.next_up(), None);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(Bitwidth::B2.to_string(), "2bit");
        assert_eq!(Bitwidth::Full.to_string(), "full");
    }
}
