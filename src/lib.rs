//! # STI: Speedy Transformer Inference — workspace facade
//!
//! A from-scratch Rust reproduction of *STI: Turbocharge NLP Inference at
//! the Edge via Elastic Pipelining* (Guo, Choe & Lin, ASPLOS '23), grown
//! from the paper's one-app engine into a concurrent serving runtime.
//!
//! STI reconciles the latency/memory tension of on-device transformer
//! inference with two techniques:
//!
//! 1. **Elastic model sharding** — every layer is split into `M` vertical
//!    slices (one attention head + `1/M` of the FFN), each stored on flash
//!    in `K` quantized fidelity versions; any `n × m` subset at any mix of
//!    fidelities is a runnable submodel.
//! 2. **Elastic pipeline planning** — a two-stage planner picks the
//!    max-FLOPs submodel that computes within the target latency `T`, then
//!    allocates per-shard bitwidths under layerwise *Accumulated IO
//!    Budgets* so IO never stalls the compute pipeline, spending a small
//!    *preload buffer* `|S|` to warm the first layers.
//!
//! ## Two execution facades
//!
//! [`prelude::StiEngine`] is the paper's contract: one app, one engagement
//! at a time, plan once, execute repeatedly, replan only when `T` or `|S|`
//! changes (§3.2).
//!
//! [`prelude::StiServer`] is the serving runtime this repository is growing
//! toward: one server owns the model and every shareable resource — a
//! `PlanCache` keyed by the planning knobs, a byte-budgeted `ShardCache` of
//! compressed blobs, shared read-mostly preload buffers, and an
//! `IoScheduler` that multiplexes layer requests from N concurrent
//! engagements over one flash model (FIFO per engagement, round-robin
//! across engagements, and — under a `BatchPolicy` window — **shared-IO
//! batching**: co-resident sessions' byte-identical layer loads coalesce
//! into one fan-out flash job, so N identical co-runners pay near-1× flash
//! instead of N×). SLO sessions are admission-checked at open and — with a
//! `BackpressureMode` configured — gated again before every engagement
//! against the live flash-queue backlog: queue (delay until the predicted
//! contended latency meets the SLO) or shed (fail fast instead of
//! missing). Apps hold lightweight [`prelude::Session`] handles.
//! Sharing is invisible to results: a single session reproduces the engine
//! bit-for-bit, and N concurrent sessions reproduce N sequential runs
//! exactly (`tests/serving_runtime.rs` pins both down;
//! `tests/serving_batching.rs` pins the batched economics).
//!
//! ## Serving quickstart
//!
//! ```
//! use sti::prelude::*;
//! use sti::TaskContext;
//!
//! // A synthetic "fine-tuned model" + task, and the serving knobs.
//! let ctx = TaskContext::with_config(TaskKind::Sst2, ModelConfig::tiny());
//! let cfg = ServeConfig { target: SimTime::from_ms(300), ..Default::default() };
//!
//! // One server, many sessions.
//! let server = build_server(&ctx, &cfg);
//! let session = server.session()?;
//! let inference = session.infer(&[1, 2, 3])?;
//! assert!(inference.class < 2);
//!
//! // Or replay a whole multi-client trace (one thread per client).
//! let trace = ServingTrace::synthetic(&ctx, &cfg, 4, 2);
//! let report = replay_concurrent(&server, &trace)?;
//! assert_eq!(report.outcomes.len(), 4);
//! # Ok::<(), sti::prelude::PipelineError>(())
//! ```
//!
//! ## Device topology and placement-aware planning
//!
//! The simulated flash device is a [`prelude::DeviceTopology`]: `C`
//! independent *device channels* — per-channel FIFO queues with tiered
//! service times (flash, or the opt-in DRAM-residency tier for
//! cache-resident bytes) — behind an optional shared host bus. Every
//! contended-track consumer runs on the same model, hosted as components
//! of the `sti-core::engine` simulation core
//! ([`prelude::TopologyQueueSim`]): the post-replay contention report,
//! `ServingMix::predict`/`min_delay` (admission and the gate simulate
//! per-channel lanes against per-device-channel backlog), and the SLO
//! search. Placement is a *stripe*: each session's request signatures are
//! offset by its stripe and hashed to a channel
//! (`DeviceTopology::channel_for`), so byte-identical requests from two
//! sessions coalesce into one batched flash job only when placed on the
//! **same** device channel. Plain sessions stripe round-robin by session
//! token; SLO sessions get a placement axis in `plan_for_slo_mix` —
//! which channels a candidate's layers stripe across is searched
//! alongside `(T, |S|)`, prefix sharing, and realloc — so an admission
//! that fails on one channel can succeed by striping across four
//! (`tests/serving_device.rs` pins exactly that, plus per-channel
//! busy-time conservation and FIFO). `C = 1` (the default) has no
//! placement freedom and reproduces the legacy single-channel runtime
//! bit-identically on every shipped fixture; `sti serve --channels N`
//! sets the topology everywhere, and per-device-channel span tracks and
//! `io.channel.<c>.*` metrics make each channel's busy time, queued
//! bytes, and batch fan-out observable.
//!
//! ## Markov next-engagement prefetching
//!
//! Recurrent clients telegraph their future: the same `(target, |S|, SLO,
//! stripe)` engagement keeps coming back after a think-time gap. With
//! `sti serve --prefetch markov` (off by default) the server learns that
//! recurrence online — each completion feeds a per-client chain of
//! interned [`prelude::EngagementKey`]s whose pairwise `MarkovEdge`s
//! carry follow/break confidence, inter-arrival gap statistics, and a
//! TTL'd rejection cache — and emits a budgeted `PrefetchPlan`
//! (`--prefetch-budget-kb`, confidence floor) naming the predicted next
//! working set. The executor stages those shards into a bounded
//! **staging pool** beside the `ShardCache` as *background-class* flash
//! jobs: `IoScheduler` dispatches them only when no demand IO is
//! runnable, and the contended track prices them into the **idle
//! windows** the demand replay left on each device channel — real
//! channel time and real flash bytes, but demand completions are inputs
//! to that pricing, so speculation cannot move a demand latency by
//! construction. A later demand miss takes the staged blob out of the
//! pool (with `dram_residency` on, at DRAM speed on the contended
//! track); a wrong prediction costs only the wasted bytes and silences
//! its edge. The fence is pinned by `tests/serving_prefetch.rs`:
//! outcomes, contended rows, gate decisions, and SLO verdicts are
//! bit-identical to the prefetch-off run (the gate's
//! `GateReason::speculative_bytes` is an advisory label the walk never
//! reads), and the serve report + `prefetch.*` metrics/span track show
//! the hit rate, speculated bytes, and evictions.
//!
//! ## Fleet mode and the perf ledger
//!
//! The serving runtime scales past "dozens of sessions" by making every
//! per-decision cost independent of fleet size: the server keeps one
//! **live `ServingMix`** updated in place on open/close/retarget (never
//! rebuilt per decision), the mix's digest is a **rolling per-session
//! fold** updated O(1) by those mutators, session job lists are
//! `Arc`-shared (lane assembly clones pointers, not jobs), and one full
//! gate walk per registry change prices *every* open SLO session — each
//! session's steady-state gate decision is a digest + memo lookup.
//!
//! `sti serve --fleet 100,1000,10000,100000` sweeps synthetic fleets on
//! the virtual clock (gate delays land on the simulated timeline, never as
//! real sleeps) and `--bench-out BENCH_serving.json` writes the perf
//! ledger checked into the repo root:
//!
//! ```json
//! { "bench": "serving_fleet", "unit": "us", "sweep": [
//!   { "sessions": 104, "open_total_us": 113.6, "admission_mean_us": 33.5,
//!     "gate_cold_us": 73.0, "gate_mean_us": 0.078, "gate_decisions": 512,
//!     "decisions_per_sec": 12756945.3, "digest_mean_us": 0.024 } ] }
//! ```
//!
//! `gate_mean_us` is the near-flat number (memoized steady state);
//! `gate_cold_us` is the one full walk a registry change costs, amortized
//! over every session's next decision — and `gate_p50_us`/`gate_p90_us`/
//! `gate_p99_us` give the tail from a log₂-bucket histogram.
//! `tests/serving_fleet.rs` pins the incremental digest equal to a
//! from-scratch rehash under arbitrary register/retarget/drop/backlog
//! interleavings. Each entry is stamped with its executor and device
//! `channels`, and carries `contended_eps` — replay engagements per
//! *simulated* second on the contended track, the column that scales
//! with the channel count, plus the prefetcher's `prefetch_hit_rate`,
//! `prefetch_speculated_kb`, and `contended_p50_us` columns. Re-running
//! `--bench-out` against an existing ledger *merges* by `(exec_mode,
//! channels, prefetch, fleet points)` instead of clobbering, so
//! threaded/event, per-topology, and prefetch-on/off sweeps accumulate
//! in one file.
//!
//! ## Deterministic observability (`sti-obs`)
//!
//! Everything the runtime reports about itself is clocked on *simulated*
//! time, so observability is a pure function of the replay — and never
//! perturbs it:
//!
//! - **Spans.** Every engagement, flash job, and gate decision becomes a
//!   [`prelude::SpanEvent`] on a `(track, name, tick)` virtual timeline,
//!   assembled canonically from the server's logs after the replay.
//!   Racy threaded-mode channel ids are remapped to stable
//!   `(session, engagement)` ids, so the deterministic tracks
//!   (session/channel/flash — [`prelude::TrackFilter::Deterministic`])
//!   export **byte-identically** across `--exec threaded` and
//!   `--exec event` and across runs. Engine ticks and host-side dispatch
//!   ride separate non-deterministic "color" tracks that the filter
//!   excludes. Span names are dotted lowercase (`gate.delay`,
//!   `flash.service`, `io.dispatch`, `engine.tick`).
//! - **Metrics.** `IoScheduler` and `StiServer` counters are named
//!   instruments in a [`prelude::MetricsRegistry`] (sharded counters,
//!   peak-tracking gauges, fixed log₂-bucket histograms — no allocation
//!   on the hot path); instrument prefixes (`io.*`, `serving.*`,
//!   `gate.*`, `engine.*`) are disjoint so snapshots merge losslessly.
//! - **Exporters.** `sti serve --trace-out spans.json` writes
//!   Chrome-trace/Perfetto JSON (open in `ui.perfetto.dev`);
//!   `--trace-tracks all` adds the color tracks; `--metrics-out` writes
//!   the metrics snapshot as sorted JSON with histogram percentiles.
//!
//! When no sink is installed the span hot path is a branch on
//! [`prelude::ObsSink::Null`] — `crates/bench/benches/obs_overhead.rs` pins the
//! disabled-mode overhead in the noise floor, and
//! `tests/serving_obs.rs` pins run-twice and cross-executor export
//! determinism plus the never-perturbs contract.
//!
//! The single-app engine path (`StiEngine::builder(..)`) works exactly as
//! in the seed; see `crates/pipeline` for both facades, and the
//! [`prelude`] for one-stop imports. The `baselines` module implements the
//! comparison systems of the paper's Table 4; `runner` evaluates any of
//! them on any task/device/latency; `serving` replays multi-client traces
//! — the machinery behind every experiment binary in `sti-bench` and the
//! `sti serve` CLI subcommand.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sti_core::*;
