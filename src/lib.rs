//! Workspace-level facade for the STI reproduction.
//!
//! This crate exists so that cross-crate integration tests (`tests/`) and the
//! runnable examples (`examples/`) can live at the repository root as plain
//! Cargo targets. All functionality is provided by the member crates and
//! re-exported through [`sti`].

pub use sti::*;
