//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the API this workspace's property tests use:
//! range/tuple/vec strategies, `prop_map`, `any::<T>()`, `prop::sample::Index`,
//! and the `proptest!` macro. Instead of proptest's shrinking search, each
//! property runs over `cases` deterministically seeded random samples (the
//! seed derives from the test name, so failures reproduce exactly). That
//! trades minimal counterexamples for zero dependencies — acceptable for an
//! offline build where the properties themselves are the point.

use std::ops::{Range, RangeInclusive};

/// Deterministic xorshift64* generator; seeded per test from the test name.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a), so each property gets
    /// a stable, independent stream.
    pub fn for_test(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(hash | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Test-case configuration (`cases` = samples per property).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` samples.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;

    /// Generates values of an associated type from a random stream.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }
}

use strategy::Strategy;

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u64 + 1;
                self.start() + rng.below(span) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Strategies over collections.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// A strategy for `Vec`s whose length is drawn from `sizes` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    /// The [`vec()`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.sizes.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        sample::Index(rng.next_u64() as usize)
    }
}

/// The `any::<T>()` strategy.
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// A strategy producing any value of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    /// An index into a collection of yet-unknown length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(pub(crate) usize);

    impl Index {
        /// Resolves against a concrete collection length.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }
}

/// The usual glob import for property tests.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig};

    /// Namespace mirror so `prop::sample::Index` resolves under a glob
    /// import of this prelude.
    pub mod prop {
        pub use crate::sample;
    }
}

/// Asserts a property-test condition (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts property-test equality (no shrinking: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for _ in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$strategy, &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_test("bounds");
        for _ in 0..200 {
            let v = Strategy::sample(&(3u64..10), &mut rng);
            assert!((3..10).contains(&v));
            let w = Strategy::sample(&(5u8..=5), &mut rng);
            assert_eq!(w, 5);
            let f = Strategy::sample(&(-1.0f32..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let mut rng = crate::TestRng::for_test("compose");
        let s = crate::collection::vec((0u64..5, 1u64..3), 2..6).prop_map(|v| v.len());
        for _ in 0..50 {
            let n = Strategy::sample(&s, &mut rng);
            assert!((2..6).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_runs_cases(x in 0u64..100, idx in any::<prop::sample::Index>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(idx.index(7) < 7, true);
        }
    }
}
