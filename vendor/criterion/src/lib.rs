//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use (`Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `criterion_group!`,
//! `criterion_main!`) with a minimal but real measurement loop: each
//! benchmark runs `sample_size` timed samples and reports the mean and best
//! iteration time to stdout. No statistics, plots, or baselines — enough to
//! keep `cargo bench` runnable and comparable across commits offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{}", name.into(), parameter))
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Anything usable as a benchmark id (`&str`, `String`, or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.0
    }
}

/// The per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    iters_per_sample: u64,
    best: Duration,
    mean: Duration,
}

impl Bencher {
    /// Times `f`, recording `samples` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate iterations per sample so each sample takes ~1 ms.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        self.iters_per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let sample = start.elapsed() / self.iters_per_sample as u32;
            total += sample;
            best = best.min(sample);
        }
        self.best = best;
        self.mean = total / self.samples as u32;
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_id(), self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _c: self,
        }
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rates in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_id());
        run_one(&id, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into_id());
        run_one(&id, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (formatting no-op, kept for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b =
        Bencher { samples, iters_per_sample: 1, best: Duration::ZERO, mean: Duration::ZERO };
    f(&mut b);
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10.1} MiB/s", n as f64 / b.mean.as_secs_f64() / (1 << 20) as f64)
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.1} Kelem/s", n as f64 / b.mean.as_secs_f64() / 1e3)
        }
        None => String::new(),
    };
    println!("{id:<48} mean {:>12?}  best {:>12?}{rate}", b.mean, b.best);
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
