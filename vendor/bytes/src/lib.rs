//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace uses: `BytesMut` as a growable byte
//! buffer, `BufMut` little-endian writers, and `Buf` little-endian readers
//! over `&[u8]` cursors.

use std::ops::{Deref, DerefMut};

/// A growable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self(Vec::new())
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    /// Copies the contents into a plain `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

/// Little-endian write access to a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

macro_rules! get_le {
    ($self:ident, $ty:ty) => {{
        let n = std::mem::size_of::<$ty>();
        let (head, rest) = $self.split_at(n);
        let value = <$ty>::from_le_bytes(head.try_into().expect("exact-width slice"));
        *$self = rest;
        value
    }};
}

/// Little-endian read access over an advancing cursor.
///
/// # Panics
///
/// All readers panic when fewer bytes remain than requested, mirroring the
/// real crate; callers bound-check before decoding.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32;

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;

    /// Reads `len` raw bytes.
    fn copy_to_bytes(&mut self, len: usize) -> Vec<u8>;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        get_le!(self, u8)
    }

    fn get_u16_le(&mut self) -> u16 {
        get_le!(self, u16)
    }

    fn get_u32_le(&mut self) -> u32 {
        get_le!(self, u32)
    }

    fn get_u64_le(&mut self) -> u64 {
        get_le!(self, u64)
    }

    fn get_f32_le(&mut self) -> f32 {
        get_le!(self, f32)
    }

    fn get_f64_le(&mut self) -> f64 {
        get_le!(self, f64)
    }

    fn copy_to_bytes(&mut self, len: usize) -> Vec<u8> {
        let (head, rest) = self.split_at(len);
        let out = head.to_vec();
        *self = rest;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_f32_le(1.5);
        buf.put_f64_le(-2.25);
        buf.put_slice(b"xy");

        let bytes = buf.to_vec();
        let mut cur = bytes.as_slice();
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16_le(), 300);
        assert_eq!(cur.get_u32_le(), 70_000);
        assert_eq!(cur.get_u64_le(), 1 << 40);
        assert_eq!(cur.get_f32_le(), 1.5);
        assert_eq!(cur.get_f64_le(), -2.25);
        assert_eq!(cur.copy_to_bytes(2), b"xy");
        assert_eq!(cur.remaining(), 0);
    }
}
