//! Offline stand-in for the `serde` crate.
//!
//! The workspace only uses serde through `#[derive(Serialize, Deserialize)]`
//! markers on plan/config types (no serialization is performed anywhere —
//! persistence uses the hand-rolled binary formats in `sti-storage`). Since
//! crates.io is unreachable in this build environment, this proc-macro crate
//! supplies no-op derives so those annotations compile unchanged; swapping
//! the real serde back in later requires only a manifest change.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
