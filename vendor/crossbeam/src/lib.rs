//! Offline stand-in for the `crossbeam` crate.
//!
//! Exposes the subset the workspace uses — `channel::bounded` and `scope` —
//! implemented over `std::sync::mpsc` and `std::thread::scope`.

/// Multi-producer, single-consumer bounded channels.
pub mod channel {
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Creates a bounded channel with the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    /// The sending half of a bounded channel.
    pub struct Sender<T>(std::sync::mpsc::SyncSender<T>);

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a value, blocking while the channel is full.
        ///
        /// # Errors
        ///
        /// Fails when the receiving half has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives.
        ///
        /// # Errors
        ///
        /// Fails when all senders have been dropped and the channel drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Receives a value if one is immediately available.
        ///
        /// # Errors
        ///
        /// Fails when the channel is empty or disconnected.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }
}

/// A scoped-thread handle mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope so it can
    /// spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = Scope { inner: self.inner };
        self.inner.spawn(move || f(&scope))
    }
}

/// Runs `f` with a scope in which borrowing spawned threads can be created;
/// all threads are joined before this returns. A panicking child panics the
/// caller (the `Result` is always `Ok`, kept for crossbeam API parity).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_round_trips_in_order() {
        let (tx, rx) = super::channel::bounded(4);
        for i in 0..3 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.recv().unwrap(), 0);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn scope_joins_and_collects() {
        let data = [1, 2, 3];
        let sum = super::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }
}
