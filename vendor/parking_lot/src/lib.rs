//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds without network access, so the real crates.io
//! dependency cannot be fetched. This shim exposes the subset of the API the
//! workspace uses — `Mutex` and `RwLock` whose guards are obtained without a
//! poisoning `Result` — implemented over `std::sync`. A poisoned lock is
//! recovered instead of propagated, matching parking_lot's no-poisoning
//! semantics closely enough for this codebase (panics never leave shared
//! state half-updated here).

pub use guards::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

mod guards {
    pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};
}

/// A mutual-exclusion lock whose `lock` never returns a poisoning error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards are obtained without a poisoning
/// `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
