//! Property tests pinning the queue-model invariants of the contended
//! track (offline proptest stub: deterministically seeded samples):
//!
//! 1. contended latency ≥ uncontended latency, per job and per engagement;
//! 2. flash busy-time conservation — the simulator's busy time is exactly
//!    the sum of submitted service times;
//! 3. FIFO order preserved per channel (and the server never overlaps two
//!    jobs).

use proptest::prelude::*;
use sti::prelude::*;

/// Builds a job list from sampled (engagement, inter-arrival µs, service
/// µs) triples. Arrivals are prefix sums per engagement in submission
/// order, so every engagement's jobs arrive in FIFO order — the contract
/// the IO scheduler's dispatch log guarantees by construction.
fn build_jobs(samples: &[(u64, u64, u64)]) -> Vec<FlashJob> {
    let mut clock = std::collections::HashMap::new();
    samples
        .iter()
        .map(|&(engagement, gap_us, service_us)| {
            let engagement = engagement % 5;
            let at = clock.entry(engagement).or_insert(SimTime::ZERO);
            *at += SimTime::from_us(gap_us);
            FlashJob { engagement, arrival: *at, service: SimTime::from_us(service_us) }
        })
        .collect()
}

fn run(jobs: &[FlashJob]) -> (FlashQueueSim, sti_device::FlashQueueReport) {
    let mut sim = FlashQueueSim::new();
    for &job in jobs {
        sim.submit(job);
    }
    let report = sim.run();
    (sim, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn busy_time_is_exactly_the_sum_of_service_times(
        samples in proptest::collection::vec((0u64..5, 0u64..20_000, 1u64..10_000), 1..60),
    ) {
        let jobs = build_jobs(&samples);
        let (_, report) = run(&jobs);
        let total: SimTime = jobs.iter().map(|j| j.service).sum();
        prop_assert_eq!(report.busy, total);
        prop_assert_eq!(report.completions.len(), jobs.len());
        // A single server can never finish earlier than its busy time.
        prop_assert!(report.makespan >= report.busy);
    }

    #[test]
    fn contended_latency_dominates_uncontended_per_job_and_engagement(
        samples in proptest::collection::vec((0u64..5, 0u64..20_000, 1u64..10_000), 1..60),
    ) {
        let jobs = build_jobs(&samples);
        let (sim, report) = run(&jobs);
        let _ = &sim;
        for c in &report.completions {
            let job = jobs[c.seq];
            // Per job: queueing can only add latency over the service time.
            prop_assert!(c.completion >= c.arrival + job.service);
            prop_assert_eq!(c.completion - c.start, job.service);
        }
        // Per engagement: last contended completion can never beat the
        // engagement's own back-to-back service from its first arrival.
        for engagement in 0..5u64 {
            let mine: Vec<_> = jobs.iter().filter(|j| j.engagement == engagement).collect();
            if mine.is_empty() {
                continue;
            }
            let first_arrival = mine.iter().map(|j| j.arrival).min().unwrap_or(SimTime::ZERO);
            let service_sum: SimTime = mine.iter().map(|j| j.service).sum();
            let last = report.last_completion_of(engagement).expect("engagement has jobs");
            prop_assert!(
                last >= first_arrival + service_sum,
                "engagement {}: contended end {} beats uncontended floor {}",
                engagement,
                last,
                first_arrival + service_sum
            );
        }
    }

    #[test]
    fn fifo_per_engagement_and_no_server_overlap(
        samples in proptest::collection::vec((0u64..5, 0u64..20_000, 1u64..10_000), 1..60),
    ) {
        let jobs = build_jobs(&samples);
        let (_, report) = run(&jobs);
        // Per engagement: completions in submission order, non-overlapping.
        for engagement in 0..5u64 {
            let mine = report.completions_of(engagement);
            for pair in mine.windows(2) {
                prop_assert!(pair[0].seq < pair[1].seq, "FIFO order broken");
                prop_assert!(pair[0].completion <= pair[1].start);
            }
        }
        // Globally: one flash channel, jobs in service order never overlap.
        for pair in report.completions.windows(2) {
            prop_assert!(pair[0].completion <= pair[1].start);
        }
    }
}

/// The scheduler end of the same invariants: a live `IoScheduler`'s event
/// log replayed through the simulator conserves busy time and preserves
/// each channel's FIFO order.
#[test]
fn scheduler_event_log_upholds_the_queue_invariants() {
    use std::sync::Arc;
    let cfg = ModelConfig::tiny();
    let task = Task::build(TaskKind::Sst2, cfg.clone(), 4, 4);
    let source = Arc::new(MemStore::build(task.model(), &Bitwidth::ALL, &QuantConfig::default()));
    let importance = ImportanceProfile::from_scores(
        cfg.layers,
        cfg.heads,
        (0..cfg.total_shards()).map(|i| 0.5 + (i % 5) as f64 * 0.01).collect(),
        0.45,
    );
    let dev = DeviceProfile::odroid_n2();
    let hw = HwProfile::measure(&dev, &cfg, &QuantConfig::default());
    let server = StiServer::builder(task.model().clone(), source, hw, dev.flash, importance)
        .target(SimTime::from_ms(300))
        .preload_budget(0)
        .widths(&[2, 4])
        .build();
    let session = server.session().unwrap();
    for tokens in [[1u32, 2].as_slice(), &[3], &[4, 5]] {
        session.infer(tokens).unwrap();
    }
    let report = server.contention_report();
    assert_eq!(report.flash_busy, server.io_stats().sim_flash_busy, "busy-time conservation");
    for e in &report.engagements {
        assert!(e.contended >= e.uncontended, "contended dominates uncontended");
    }
}
