//! Contracts of the unified `ServingMix` prediction engine and the
//! sharing-aware `|S|` search.
//!
//! 1. **Equivalence.** The legacy predictor entry points
//!    (`predict_contended_latency_against`, `predict_engagement_latency`,
//!    `min_queue_delay`) are thin views over `ServingMix` — bit-identical
//!    on the same inputs — and trace replays through the refactored
//!    single-predictor path stay deterministic (concurrent ≡ sequential
//!    outcomes and gate logs on `smoke.json` and `burst.json`). On a trace
//!    with no preload budgets, `--plan-sharing mix` is the per-session
//!    fixed point: byte-identical outcomes and decisions.
//! 2. **Sharing-aware `|S|`.** The acceptance economics: against an
//!    8-identical-session batched mix, the sharing-aware search admits the
//!    *full-target* plan at an SLO the per-session search cannot hold, its
//!    predicted contended latency is strictly lower than the default
//!    placement's, and the measured contended track agrees. A proptest
//!    pins that the sharing-aware placement never preloads a layer a
//!    batched in-window co-resident already streams.
//! 3. **Digest convergence.** `ServingMix::digest` — the one memo identity
//!    behind both the SLO-plan cache and the gate memo — distinguishes
//!    every registry change that can alter a prediction or a gate replay.

use std::sync::Arc;

use proptest::prelude::*;
use sti::prelude::*;
use sti::TaskContext;

fn importance_for(cfg: &ModelConfig) -> ImportanceProfile {
    ImportanceProfile::from_scores(
        cfg.layers,
        cfg.heads,
        (0..cfg.total_shards()).map(|i| 0.5 + (i % 5) as f64 * 0.01).collect(),
        0.45,
    )
}

fn fixture() -> (HwProfile, ImportanceProfile) {
    let cfg = ModelConfig::tiny();
    let hw = HwProfile::measure(&DeviceProfile::odroid_n2(), &cfg, &QuantConfig::default());
    let importance = importance_for(&cfg);
    (hw, importance)
}

const WIDTHS: [usize; 2] = [2, 4];

fn batched() -> IoSharing {
    IoSharing::Batched(SimTime::from_ms(1))
}

#[test]
fn legacy_predictors_are_views_over_the_mix() {
    let (hw, imp) = fixture();
    let plan = plan_two_stage(&hw, &imp, SimTime::from_ms(300), 0, &WIDTHS, &Bitwidth::ALL);
    let heavy = plan_two_stage(&hw, &imp, SimTime::from_ms(2_000), 0, &WIDTHS, &Bitwidth::ALL);
    let co = vec![
        CoRunnerLoad::from_plan(&hw, &heavy),
        CoRunnerLoad::from_plan_at(&hw, &plan, SimTime::from_us(400)),
    ];
    for sharing in [IoSharing::Exclusive, batched()] {
        let mix = ServingMix::from_co_runners(&co, sharing);
        let load = EngagementLoad::from_plan(&hw, &plan, SimTime::ZERO);
        assert_eq!(
            predict_contended_latency_against(&hw, &plan, &co, sharing),
            mix.predict(&load),
            "the admission view must be the mix prediction"
        );
        let key_legacy = ServingPlanKey::against(
            PlanKey::new("m", SimTime::from_ms(300), 0, &WIDTHS, &Bitwidth::ALL),
            SimTime::ZERO,
            &co,
            sharing,
        );
        let key_mix = ServingPlanKey::for_mix(
            PlanKey::new("m", SimTime::from_ms(300), 0, &WIDTHS, &Bitwidth::ALL),
            SimTime::ZERO,
            &mix,
            PreloadPolicy::PerSession,
        );
        assert_eq!(key_legacy, key_mix, "legacy keys converge on the mix digest");
    }
    // The gate view: a backlog snapshot is a mix too.
    let jobs: Vec<LayerIoJob> = layer_io_jobs(&hw, &heavy).into_iter().flatten().collect();
    let snapshot = BacklogSnapshot {
        channels: vec![ChannelBacklog {
            channel: 9,
            arrival: SimTime::ZERO,
            effective_arrival: SimTime::ZERO,
            inflight: false,
            queued: jobs
                .iter()
                .map(|j| QueuedIo { sig: j.sig, bytes: 1, service: j.service })
                .collect(),
        }],
        batch_window: None,
    };
    let load = EngagementLoad::from_plan(&hw, &plan, SimTime::ZERO);
    for sharing in [IoSharing::Exclusive, batched()] {
        let mix = ServingMix::from_backlog(&snapshot, sharing);
        assert_eq!(predict_engagement_latency(&snapshot, &load, sharing), mix.predict(&load));
        let slo = mix.predict(&load) + SimTime::from_ms(1);
        let generous = SimTime::from_ms(600_000);
        assert_eq!(
            min_queue_delay(&snapshot, &load, sharing, slo, generous),
            mix.min_delay(&load, slo, generous),
            "the delay search must be the mix's"
        );
    }
}

#[test]
fn mix_digest_distinguishes_every_gate_relevant_change() {
    let (hw, imp) = fixture();
    let plan = plan_two_stage(&hw, &imp, SimTime::from_ms(300), 0, &WIDTHS, &Bitwidth::ALL);
    let load = CoRunnerLoad::from_plan(&hw, &plan);
    let base = {
        let mut mix = ServingMix::new(IoSharing::Exclusive);
        mix.push_session(0, load.clone(), None);
        mix
    };
    assert_eq!(base.digest(), base.digest(), "digests are deterministic");
    // A different token is a different mix (the gate's tie-break order).
    let mut other_token = ServingMix::new(IoSharing::Exclusive);
    other_token.push_session(1, load.clone(), None);
    assert_ne!(base.digest(), other_token.digest());
    // A gate profile appearing is a different mix (the replay changes).
    let mut with_slo = ServingMix::new(IoSharing::Exclusive);
    with_slo.push_session(
        0,
        load.clone(),
        Some(SloProfile::from_plan(&hw, &plan, SimTime::from_ms(500))),
    );
    assert_ne!(base.digest(), with_slo.digest());
    // ...and so is a different SLO on the same profile.
    let mut other_slo = ServingMix::new(IoSharing::Exclusive);
    other_slo.push_session(
        0,
        load.clone(),
        Some(SloProfile::from_plan(&hw, &plan, SimTime::from_ms(900))),
    );
    assert_ne!(with_slo.digest(), other_slo.digest());
    // A different arrival, sharing mode, or an external backlog all count.
    let mut late = ServingMix::new(IoSharing::Exclusive);
    late.push_session(0, CoRunnerLoad::from_plan_at(&hw, &plan, SimTime::from_ms(7)), None);
    assert_ne!(base.digest(), late.digest());
    let mut shared = ServingMix::new(batched());
    shared.push_session(0, load.clone(), None);
    assert_ne!(base.digest(), shared.digest());
    let backlog = BacklogSnapshot {
        channels: vec![ChannelBacklog {
            channel: 3,
            arrival: SimTime::ZERO,
            effective_arrival: SimTime::ZERO,
            inflight: false,
            queued: vec![QueuedIo { sig: 1, bytes: 2, service: SimTime::from_ms(1) }],
        }],
        batch_window: None,
    };
    let with_backlog = base.clone().with_backlog(backlog);
    assert_ne!(base.digest(), with_backlog.digest());
}

/// Replays a trace through both modes under a plan-sharing policy and pins
/// the determinism contract of the refactored single-predictor path.
fn replay_deterministically(
    trace_path: &str,
    backpressure: BackpressureMode,
    plan_sharing: PreloadPolicy,
) -> ServeReport {
    let ctx = TaskContext::with_config(TaskKind::Sst2, ModelConfig::tiny());
    let cfg = ServeConfig {
        target: SimTime::from_ms(300),
        preload_bytes: 0,
        backpressure,
        plan_sharing,
        batch_window: Some(SimTime::from_us(500)),
        ..Default::default()
    };
    let trace = load_trace(trace_path).expect("shipped example parses");
    let concurrent = replay_concurrent(&build_server(&ctx, &cfg), &trace).unwrap();
    let sequential = replay_sequential(&build_server(&ctx, &cfg), &trace).unwrap();
    assert_eq!(concurrent.outcomes, sequential.outcomes, "{trace_path}: outcomes diverged");
    assert_eq!(
        concurrent.contention.gate, sequential.contention.gate,
        "{trace_path}: gate decisions diverged"
    );
    assert_eq!(concurrent.rejected_clients, sequential.rejected_clients, "{trace_path}");
    concurrent
}

#[test]
fn refactored_predictors_replay_smoke_and_burst_deterministically() {
    for mode in [BackpressureMode::Shed, BackpressureMode::Queue(SimTime::from_ms(2_000))] {
        for policy in [PreloadPolicy::PerSession, PreloadPolicy::SharingAware] {
            replay_deterministically("examples/traces/smoke.json", mode, policy);
            replay_deterministically("examples/traces/burst.json", mode, policy);
        }
    }
}

#[test]
fn zero_budget_traces_make_sharing_aware_the_per_session_fixed_point() {
    // Every burst.json client has preload_kb 0: there is no budget to
    // re-place, so the sharing-aware search must coincide with the
    // per-session one bit for bit.
    let mode = BackpressureMode::Queue(SimTime::from_ms(2_000));
    let off =
        replay_deterministically("examples/traces/burst.json", mode, PreloadPolicy::PerSession);
    let mix =
        replay_deterministically("examples/traces/burst.json", mode, PreloadPolicy::SharingAware);
    assert_eq!(off.outcomes, mix.outcomes);
    assert_eq!(off.contention.gate, mix.contention.gate);
    assert_eq!(mix.contention.preload_bytes_reallocated, 0, "nothing to reallocate");
}

/// The acceptance economics at the planner level: an 8-identical-session
/// batched mix (every co-resident streaming its full plan), a candidate
/// with a real preload grant.
#[test]
fn sharing_aware_preload_admits_the_full_target_against_an_identical_batched_mix() {
    let (hw, imp) = fixture();
    // The SLO is the full-fidelity plan's own makespan: zero slack, so any
    // misalignment with the mix is fatal to the default placement.
    let slo = plan_two_stage(&hw, &imp, SimTime::from_ms(60_000), 0, &WIDTHS, &Bitwidth::ALL)
        .predicted
        .makespan;
    let budget = 16 << 10;
    // Eight identical co-residents running the zero-|S| allocation of the
    // exact target the candidate's first ladder rung will try: they stream
    // every layer, so every candidate layer is covered in-window.
    let resident = plan_two_stage(&hw, &imp, slo, 0, &WIDTHS, &Bitwidth::ALL);
    assert!(resident.predicted.makespan <= slo, "the resident plan meets the SLO alone");
    let co = vec![CoRunnerLoad::from_plan(&hw, &resident); 8];
    let mix = ServingMix::from_co_runners(&co, batched());

    // The default (per-session) placement misaligns with the mix: its
    // preload shifts the candidate's request stream off the co-residents',
    // so nothing coalesces and the candidate queues behind the batch.
    let default_plan = plan_two_stage(&hw, &imp, slo, budget, &WIDTHS, &Bitwidth::ALL);
    assert!(!default_plan.preload.is_empty(), "the grant must buy a real prefix");
    let default_predicted =
        mix.predict(&EngagementLoad::from_plan(&hw, &default_plan, SimTime::ZERO));
    assert!(
        default_predicted > slo,
        "the misaligned default placement must miss the SLO: {default_predicted} <= {slo}"
    );

    let per_session = plan_for_slo_mix(
        &hw,
        &imp,
        slo,
        SimTime::ZERO,
        &mix,
        PreloadPolicy::PerSession,
        budget,
        &WIDTHS,
        &Bitwidth::ALL,
    );
    let sharing = plan_for_slo_mix(
        &hw,
        &imp,
        slo,
        SimTime::ZERO,
        &mix,
        PreloadPolicy::SharingAware,
        budget,
        &WIDTHS,
        &Bitwidth::ALL,
    );

    // Sharing-aware: the zero-|S| placement aligns byte-identically with
    // the co-residents, rides their batches, and admits at the FULL
    // target — the strictly tighter admission the per-session search
    // cannot hold (it must degrade the target or miss outright).
    assert!(sharing.meets_slo, "sharing-aware |S| admits");
    assert_eq!(sharing.target, slo, "at the full target");
    assert!(sharing.preload_bytes_reallocated > 0, "the whole prefix was freed");
    assert!(
        sharing.predicted_contended < default_predicted,
        "strictly lower contended latency than the default placement: {} !< {}",
        sharing.predicted_contended,
        default_predicted
    );
    assert!(
        !per_session.meets_slo || per_session.target < slo,
        "per-session |S| must degrade the target or miss at this SLO"
    );
    if per_session.meets_slo {
        assert!(
            per_session.target < sharing.target,
            "the per-session search holds the SLO only with a strictly degraded target: \
             {} !< {}",
            per_session.target,
            sharing.target
        );
    }
}

/// The acceptance economics on the measured track: the same mix through a
/// real server, quiesced so the batching fan-out is deterministic. Plan
/// quality is held constant — both candidates run a full-target plan with
/// the same grant — so the comparison isolates the `|S|` *placement*: the
/// default byte-prefix (per-session) against the mix-planned one.
#[test]
fn sharing_aware_preload_strictly_lowers_the_measured_contended_latency() {
    let build = |policy: PreloadPolicy| {
        let cfg = ModelConfig::tiny();
        let task = Task::build(TaskKind::Sst2, cfg.clone(), 4, 4);
        let dev = DeviceProfile::odroid_n2();
        let hw = HwProfile::measure(&dev, &cfg, &QuantConfig::default());
        let source =
            Arc::new(MemStore::build(task.model(), &Bitwidth::ALL, &QuantConfig::default()));
        StiServer::builder(task.model().clone(), source, hw, dev.flash, importance_for(&cfg))
            .widths(&WIDTHS)
            .batch_policy(BatchPolicy::from_window_us(1_000))
            .plan_sharing(policy)
            .build()
    };
    let cfg = ModelConfig::tiny();
    let hw = HwProfile::measure(&DeviceProfile::odroid_n2(), &cfg, &QuantConfig::default());
    let slo = plan_two_stage(
        &hw,
        &importance_for(&cfg),
        SimTime::from_ms(60_000),
        0,
        &WIDTHS,
        &Bitwidth::ALL,
    )
    .predicted
    .makespan;
    let budget = 16 << 10;
    let run = |policy: PreloadPolicy| {
        let srv = build(policy);
        // Eight identical zero-|S| co-residents...
        let residents: Vec<Session> = (0..8).map(|_| srv.session_with(slo, 0).unwrap()).collect();
        // ...and the candidate at the full target with a real preload
        // grant: the default byte-prefix placement under PerSession, the
        // mix-planned placement under SharingAware. (The SLO search would
        // degrade the per-session candidate's target instead — that
        // admission-quality gap is pinned at the planner level; here the
        // quality is held equal so the placement alone differs.)
        let candidate = match policy {
            PreloadPolicy::PerSession => srv.session_with(slo, budget).unwrap(),
            PreloadPolicy::SharingAware => srv.session_with_slo(slo, budget).unwrap(),
        };
        let candidate_token = residents.len() as u64;
        srv.pause_io();
        let expected: usize = residents.iter().map(|s| s.plan().layers.len()).sum::<usize>()
            + candidate
                .plan()
                .layers
                .iter()
                .filter(|pl| {
                    pl.items().any(|(slice, _)| {
                        !candidate.plan().is_preloaded(ShardId::new(pl.layer, slice))
                    })
                })
                .count();
        let report = std::thread::scope(|s| {
            let hs: Vec<_> = residents
                .iter()
                .map(|sess| s.spawn(move || sess.infer(&[7, 8]).map(|_| ())))
                .collect();
            let ch = s.spawn(|| candidate.infer(&[1, 2]).map(|_| ()));
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
            while srv.queued_io_requests() < expected {
                assert!(std::time::Instant::now() < deadline, "workload never finished queuing");
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            srv.resume_io();
            for h in hs {
                h.join().unwrap().unwrap();
            }
            ch.join().unwrap().unwrap();
            srv.contention_report()
        });
        let mine = *report
            .engagements
            .iter()
            .find(|e| e.session == candidate_token)
            .expect("the candidate executed");
        assert_eq!(report.preload_bytes_reallocated, srv.serving_stats().preload_bytes_reallocated);
        (mine, srv.serving_stats().preload_bytes_reallocated)
    };
    let (per_session, per_session_realloc) = run(PreloadPolicy::PerSession);
    let (sharing, sharing_realloc) = run(PreloadPolicy::SharingAware);
    assert_eq!(per_session_realloc, 0, "per-session |S| never reallocates");
    assert!(sharing_realloc > 0, "the sharing-aware search moved the grant off shared layers");
    // The per-engagement issue clock makes this comparison honest: the
    // per-session candidate's first byte waits behind the co-residents'
    // batch (initial queueing its service-onward makespan never showed).
    assert!(
        sharing.end_to_end() < per_session.end_to_end(),
        "measured issue-to-completion latency must be strictly lower under sharing-aware |S|: \
         {} !< {}",
        sharing.end_to_end(),
        per_session.end_to_end()
    );
    assert!(sharing.contended <= slo, "and the candidate meets its SLO on the measured track");
}

#[test]
fn retarget_slo_replaces_the_reallocated_bytes_contribution() {
    // A retarget against an unchanged mix must not re-add its session's
    // reallocated bytes: the stat tracks current placements, not searches.
    let cfg = ModelConfig::tiny();
    let task = Task::build(TaskKind::Sst2, cfg.clone(), 4, 4);
    let dev = DeviceProfile::odroid_n2();
    let hw = HwProfile::measure(&dev, &cfg, &QuantConfig::default());
    let source = Arc::new(MemStore::build(task.model(), &Bitwidth::ALL, &QuantConfig::default()));
    let srv = StiServer::builder(
        task.model().clone(),
        source,
        hw.clone(),
        dev.flash,
        importance_for(&cfg),
    )
    .widths(&WIDTHS)
    .batch_policy(BatchPolicy::from_window_us(1_000))
    .plan_sharing(PreloadPolicy::SharingAware)
    .build();
    let slo = plan_two_stage(
        &hw,
        &importance_for(&cfg),
        SimTime::from_ms(60_000),
        0,
        &WIDTHS,
        &Bitwidth::ALL,
    )
    .predicted
    .makespan;
    let _residents: Vec<Session> = (0..8).map(|_| srv.session_with(slo, 0).unwrap()).collect();
    let mut candidate = srv.session_with_slo(slo, 16 << 10).unwrap();
    let moved = srv.serving_stats().preload_bytes_reallocated;
    assert!(moved > 0, "the grant was freed at admission");
    candidate.retarget_slo(slo).unwrap();
    assert_eq!(
        srv.serving_stats().preload_bytes_reallocated,
        moved,
        "a same-mix retarget replaces its contribution instead of re-adding it"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The sharing-aware placement never preloads a layer a batched
    /// in-window co-resident already streams while an un-shared candidate
    /// layer exists — covered layers ride the batch, the budget goes to
    /// un-shared layers (and only un-shared layers: a partial preload of a
    /// covered layer would break the very batch match that made it cheap).
    #[test]
    fn sharing_aware_preload_never_covers_what_the_mix_streams(
        target_ms in 100u64..2_000,
        budget_kb in 1u64..256,
        resident_target_ms in 100u64..2_000,
    ) {
        let (hw, imp) = fixture();
        let plan = plan_two_stage(
            &hw,
            &imp,
            SimTime::from_ms(target_ms),
            budget_kb << 10,
            &WIDTHS,
            &Bitwidth::ALL,
        );
        // An in-window co-resident streaming its full (zero-|S|) plan.
        let resident = plan_two_stage(
            &hw,
            &imp,
            SimTime::from_ms(resident_target_ms),
            0,
            &WIDTHS,
            &Bitwidth::ALL,
        );
        let co = vec![CoRunnerLoad::from_plan(&hw, &resident)];
        let mix = ServingMix::from_co_runners(&co, batched());
        let shared = mix.streamed_sigs_in_window(SimTime::ZERO);
        prop_assert!(!shared.is_empty());
        if let Some((realloc, freed)) = reallocate_preload_for_mix(&hw, &plan, &shared) {
            let covered: Vec<bool> = plan
                .layers
                .iter()
                .map(|pl| shared.contains(&LayerRequest::sig_of(pl.layer, pl.items())))
                .collect();
            for &(id, _) in &realloc.preload {
                prop_assert!(
                    !covered[id.layer as usize],
                    "layer {} is streamed by an in-window co-resident yet was preloaded",
                    id.layer
                );
            }
            // The budget is still respected, and the freed bytes are real.
            let used: u64 = realloc.preload.iter().map(|&(_, bw)| hw.shard_bytes(bw)).sum();
            prop_assert!(used <= plan.preload_budget_bytes);
            let moved: u64 = plan
                .preload
                .iter()
                .filter(|entry| !realloc.preload.contains(entry))
                .map(|&(_, bw)| hw.shard_bytes(bw))
                .sum();
            prop_assert_eq!(freed, moved);
            // Same submodel, same allocation: only the placement moved.
            prop_assert_eq!(&realloc.layers, &plan.layers);
        }
    }
}
