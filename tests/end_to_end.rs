//! End-to-end integration: cloud preprocessing → disk store → profiling →
//! planning → pipelined execution, across crates.

use std::sync::Arc;

use sti::prelude::*;

fn tiny_setup() -> (Task, DeviceProfile, HwProfile, ImportanceProfile) {
    let cfg = ModelConfig::tiny();
    let task = Task::build(TaskKind::Sst2, cfg.clone(), 6, 8);
    let device = DeviceProfile::odroid_n2();
    let hw = HwProfile::measure(&device, &cfg, &QuantConfig::default());
    let importance = profile_importance(task.model(), task.dev(), &QuantConfig::default());
    (task, device, hw, importance)
}

#[test]
fn full_lifecycle_on_disk_store() {
    let (task, device, hw, importance) = tiny_setup();
    let dir = std::env::temp_dir().join(format!("sti-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Cloud preprocessing.
    let created =
        ShardStore::create(&dir, task.model(), &Bitwidth::ALL, &QuantConfig::default()).unwrap();
    assert!(created.total_bytes() > 0);
    drop(created);

    // Device-side open + engine.
    let store = Arc::new(ShardStore::open(&dir).unwrap());
    let engine = StiEngine::builder(task.model().clone(), store, hw, device.flash, importance)
        .target(SimTime::from_ms(400))
        .preload_budget(16 << 10)
        .widths(&[2, 4])
        .build()
        .unwrap();

    let inf = engine.infer(&[1, 2, 3, 4]).unwrap();
    assert!(inf.class < 2);
    assert!(inf.outcome.timeline.makespan <= SimTime::from_ms(400));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn engine_accuracy_tracks_runner_accuracy() {
    // The engine's pipelined execution and the runner's direct evaluation
    // must agree: same plan, same dequantized weights, same predictions.
    let cfg = ModelConfig::tiny();
    let ctx = sti::TaskContext::with_config(TaskKind::Rte, cfg.clone());
    let device = DeviceProfile::odroid_n2();
    let exp = sti::Experiment {
        baseline: Baseline::Sti,
        device: device.clone(),
        target: SimTime::from_ms(300),
        preload_bytes: 4 << 10,
    };
    let result = sti::run_experiment(&ctx, &exp);

    let hw = HwProfile::measure(&device, &cfg, ctx.quant());
    let store =
        Arc::new(MemStore::build(ctx.task().model(), &Bitwidth::ALL, &QuantConfig::default()));
    let engine = StiEngine::builder(
        ctx.task().model().clone(),
        store,
        hw,
        device.flash,
        ctx.importance().clone(),
    )
    .target(SimTime::from_ms(300))
    .preload_budget(4 << 10)
    .build()
    .unwrap();

    assert_eq!(engine.plan().shape, result.plan.shape);
    let preds: Vec<usize> =
        ctx.task().test().iter().map(|e| engine.infer(&e.tokens).unwrap().class).collect();
    let engine_acc = ctx.task().test_accuracy(&preds);
    assert!(
        (engine_acc - result.accuracy).abs() < 1e-9,
        "engine accuracy {engine_acc} != runner accuracy {}",
        result.accuracy
    );
}

#[test]
fn baseline_ordering_holds_on_tiny_grid() {
    // The paper's headline ordering at a tight target: STI >= StdPL-2bit and
    // STI >= Load&Exec (more FLOPs or better fidelity allocation).
    let ctx = sti::TaskContext::with_config(TaskKind::Sst2, ModelConfig::tiny());
    let device = DeviceProfile::odroid_n2();
    let run = |baseline| {
        sti::run_experiment(
            &ctx,
            &sti::Experiment {
                baseline,
                device: device.clone(),
                target: SimTime::from_ms(150),
                preload_bytes: 4 << 10,
            },
        )
    };
    let ours = run(Baseline::Sti);
    let le = run(Baseline::LoadAndExec);
    let std_full = run(Baseline::StdPipeline(Bitwidth::Full));
    assert!(
        ours.plan.shape.shard_count() >= le.plan.shape.shard_count(),
        "STI must execute at least as many shards as Load&Exec"
    );
    assert!(
        ours.plan.shape.shard_count() >= std_full.plan.shape.shard_count(),
        "STI must execute at least as many shards as StdPL-full"
    );
}

#[test]
fn replanning_is_only_triggered_by_parameter_changes() {
    let (task, device, hw, importance) = tiny_setup();
    let store = Arc::new(MemStore::build(task.model(), &Bitwidth::ALL, &QuantConfig::default()));
    let mut engine = StiEngine::builder(task.model().clone(), store, hw, device.flash, importance)
        .target(SimTime::from_ms(250))
        .preload_budget(4 << 10)
        .widths(&[2, 4])
        .build()
        .unwrap();
    let plan_before = engine.plan().clone();
    for seed in 0..3u32 {
        engine.infer(&[seed, seed + 1]).unwrap();
    }
    assert_eq!(&plan_before, engine.plan());
    engine.set_target(SimTime::from_ms(800)).unwrap();
    assert_ne!(plan_before.target, engine.plan().target);
}

#[test]
fn preload_budget_bounds_memory_and_improves_warmup() {
    let (task, device, hw, importance) = tiny_setup();
    let store = Arc::new(MemStore::build(task.model(), &Bitwidth::ALL, &QuantConfig::default()));
    let build = |budget: u64| {
        StiEngine::builder(
            task.model().clone(),
            store.clone(),
            hw.clone(),
            device.flash,
            importance.clone(),
        )
        .target(SimTime::from_ms(300))
        .preload_budget(budget)
        .widths(&[2, 4])
        .build()
        .unwrap()
    };
    let cold = build(0);
    let warm = build(32 << 10);
    assert_eq!(cold.preload_used(), 0);
    assert!(warm.preload_used() > 0);
    assert!(warm.preload_used() <= 32 << 10);

    let cold_run = cold.infer(&[7, 7]).unwrap();
    let warm_run = warm.infer(&[7, 7]).unwrap();
    assert!(warm_run.outcome.loaded_bytes < cold_run.outcome.loaded_bytes);
    assert!(warm_run.outcome.timeline.layers[0].stall <= cold_run.outcome.timeline.layers[0].stall);
}
