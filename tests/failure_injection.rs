//! Failure injection across the storage/pipeline boundary: corrupt stores,
//! missing versions, truncated files, and shrinking memory must all surface
//! as typed errors (never hangs, panics, or silent wrong results).

use std::sync::Arc;

use sti::prelude::*;
use sti_pipeline::{PipelineExecutor, PreloadBuffer};
use sti_planner::{plan_two_stage, ImportanceProfile};
use sti_storage::manifest::Manifest;
use sti_storage::StorageError;

fn setup() -> (Task, DeviceProfile, HwProfile, ImportanceProfile) {
    let cfg = ModelConfig::tiny();
    let task = Task::build(TaskKind::Qnli, cfg.clone(), 4, 4);
    let device = DeviceProfile::odroid_n2();
    let hw = HwProfile::measure(&device, &cfg, &QuantConfig::default());
    let importance = ImportanceProfile::from_scores(
        cfg.layers,
        cfg.heads,
        (0..cfg.total_shards()).map(|i| 0.5 + (i % 4) as f64 * 0.02).collect(),
        0.42,
    );
    (task, device, hw, importance)
}

fn plan_for(hw: &HwProfile, importance: &ImportanceProfile) -> ExecutionPlan {
    plan_two_stage(hw, importance, SimTime::from_ms(400), 0, &[2, 4], &Bitwidth::ALL)
}

#[test]
fn missing_version_fails_with_missing_shard() {
    let (task, device, hw, importance) = setup();
    let store = Arc::new(MemStore::build(
        task.model(),
        &[Bitwidth::B2, Bitwidth::Full],
        &QuantConfig::default(),
    ));
    // Planner believes all versions exist; B6 etc. are absent from the store.
    let plan = plan_for(&hw, &importance);
    let needs_missing = plan
        .layers
        .iter()
        .flat_map(|l| l.bitwidths.iter())
        .any(|bw| *bw != Bitwidth::B2 && *bw != Bitwidth::Full);
    let exec = PipelineExecutor::new(task.model(), store, device.flash, &hw);
    let result = exec.execute(&plan, &PreloadBuffer::new(0), &[1, 2]);
    if needs_missing {
        let err = result.unwrap_err();
        assert!(
            matches!(err, PipelineError::Storage(StorageError::MissingShard { .. })),
            "unexpected error: {err}"
        );
    }
}

#[test]
fn corrupt_disk_record_surfaces_as_corrupt_error() {
    let (task, device, hw, importance) = setup();
    let dir = std::env::temp_dir().join(format!("sti-failinj-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store =
        ShardStore::create(&dir, task.model(), &Bitwidth::ALL, &QuantConfig::default()).unwrap();

    let plan = plan_for(&hw, &importance);
    // Corrupt every layer-0 file so whichever version the plan chose is hit.
    for bw in Bitwidth::ALL {
        let path = dir.join(Manifest::layer_file_name(0, bw));
        let mut bytes = std::fs::read(&path).unwrap();
        for b in bytes.iter_mut() {
            *b ^= 0xA5;
        }
        std::fs::write(&path, bytes).unwrap();
    }
    let exec = PipelineExecutor::new(task.model(), Arc::new(store), device.flash, &hw);
    let err = exec.execute(&plan, &PreloadBuffer::new(0), &[3]).unwrap_err();
    assert!(matches!(err, PipelineError::Storage(_)), "unexpected error: {err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_manifest_fails_to_open() {
    let (task, _, _, _) = setup();
    let dir = std::env::temp_dir().join(format!("sti-failinj-manifest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store =
        ShardStore::create(&dir, task.model(), &[Bitwidth::B2], &QuantConfig::default()).unwrap();
    drop(store);
    let manifest_path = dir.join(ShardStore::MANIFEST_FILE);
    let bytes = std::fs::read(&manifest_path).unwrap();
    std::fs::write(&manifest_path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(ShardStore::open(&dir).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn deleted_layer_file_fails_reads_not_open() {
    let (task, _, _, _) = setup();
    let dir = std::env::temp_dir().join(format!("sti-failinj-delete-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store =
        ShardStore::create(&dir, task.model(), &[Bitwidth::B2], &QuantConfig::default()).unwrap();
    drop(store);
    std::fs::remove_file(dir.join(Manifest::layer_file_name(1, Bitwidth::B2))).unwrap();
    let store = ShardStore::open(&dir).unwrap();
    assert!(store.read_layer(0, &[(0, Bitwidth::B2)]).is_ok());
    assert!(store.read_layer(1, &[(0, Bitwidth::B2)]).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn oversized_preload_request_is_rejected_not_truncated() {
    let (task, _, _, _) = setup();
    let store = MemStore::build(task.model(), &[Bitwidth::Full], &QuantConfig::default());
    let blob =
        sti_storage::ShardSource::load(&store, ShardKey::new(ShardId::new(0, 0), Bitwidth::Full))
            .unwrap();
    let mut buffer = PreloadBuffer::new(blob.byte_size() as u64 - 1);
    let err = buffer.insert(ShardId::new(0, 0), blob).unwrap_err();
    assert!(matches!(err, PipelineError::PreloadOverflow { .. }));
    assert_eq!(buffer.len(), 0);
}

#[test]
fn scheduler_shutdown_mid_burst_halts_the_event_loop_cleanly() {
    use sti_storage::{IoChannel, IoScheduler, LayerRequest};

    let (task, _, _, _) = setup();
    let store = Arc::new(MemStore::build(task.model(), &Bitwidth::ALL, &QuantConfig::default()));
    let sched =
        IoScheduler::spawn(store, FlashModel::new(1_000_000, SimTime::from_ms(1)), 1, 0.0, None);
    // Event-host mode: park the pool, the loop is the only dispatcher.
    sched.pause_dispatch();
    let channel = sched.channel();

    struct Ctx {
        sched: Option<IoScheduler>,
        channel: IoChannel,
        shutdown_error: Option<StorageError>,
        log: Vec<(ComponentId, SimTime)>,
    }
    fn request(layer: u16) -> LayerRequest {
        LayerRequest { layer, items: vec![(0, Bitwidth::B2)] }
    }

    /// Drives one request through at 1 µs, then returns mid-burst at 3 µs
    /// to find the scheduler shut down under it.
    struct Worker;
    impl Component<Ctx> for Worker {
        fn id(&self) -> ComponentId {
            0
        }
        fn next_tick(&self) -> Option<SimTime> {
            Some(SimTime::from_us(1))
        }
        fn tick(&mut self, now: SimTime, sys: &mut System<'_, Ctx>) -> Option<SimTime> {
            sys.ctx.log.push((0, now));
            if let Some(sched) = sys.ctx.sched.as_ref() {
                sys.ctx.channel.request(request(0)).unwrap();
                assert_eq!(sched.drive_queued(), 1, "the loop dispatches its own burst");
                sys.ctx.channel.recv().unwrap();
                Some(SimTime::from_us(3))
            } else {
                // The saboteur shut the scheduler down between ticks: the
                // abandoned queued request surfaces the typed error —
                // never a hang — and the component stops the loop.
                sys.ctx.shutdown_error = sys.ctx.channel.recv().err();
                sys.halt();
                None
            }
        }
    }

    /// Queues a second burst at 2 µs, then shuts the scheduler down.
    struct Saboteur;
    impl Component<Ctx> for Saboteur {
        fn id(&self) -> ComponentId {
            1
        }
        fn next_tick(&self) -> Option<SimTime> {
            Some(SimTime::from_us(2))
        }
        fn tick(&mut self, now: SimTime, sys: &mut System<'_, Ctx>) -> Option<SimTime> {
            sys.ctx.log.push((1, now));
            sys.ctx.channel.request(request(1)).unwrap();
            sys.ctx.sched.take().expect("first shutdown").shutdown();
            None
        }
    }

    /// Scheduled after the halt; must never tick.
    struct Lagger;
    impl Component<Ctx> for Lagger {
        fn id(&self) -> ComponentId {
            2
        }
        fn next_tick(&self) -> Option<SimTime> {
            Some(SimTime::from_us(10))
        }
        fn tick(&mut self, now: SimTime, sys: &mut System<'_, Ctx>) -> Option<SimTime> {
            sys.ctx.log.push((2, now));
            None
        }
    }

    let mut engine: Engine<Ctx> = Engine::new();
    engine.register(Box::new(Worker));
    engine.register(Box::new(Saboteur));
    engine.register(Box::new(Lagger));
    let mut ctx = Ctx { sched: Some(sched), channel, shutdown_error: None, log: Vec::new() };
    let report = engine.run(&mut ctx);
    assert!(report.halted, "the worker stopped the loop on the shutdown error");
    assert_eq!(report.end, SimTime::from_us(3));
    assert_eq!(
        ctx.log,
        vec![(0, SimTime::from_us(1)), (1, SimTime::from_us(2)), (0, SimTime::from_us(3))],
        "no component ticks after the halt"
    );
    assert!(
        matches!(ctx.shutdown_error, Some(StorageError::SchedulerShutdown)),
        "unexpected error: {:?}",
        ctx.shutdown_error
    );
}

#[test]
fn engine_survives_budget_shrink_to_zero() {
    let (task, device, hw, importance) = setup();
    let store = Arc::new(MemStore::build(task.model(), &Bitwidth::ALL, &QuantConfig::default()));
    let mut engine = StiEngine::builder(task.model().clone(), store, hw, device.flash, importance)
        .target(SimTime::from_ms(400))
        .preload_budget(16 << 10)
        .widths(&[2, 4])
        .build()
        .unwrap();
    assert!(engine.preload_used() > 0);
    engine.set_preload_budget(0).unwrap();
    assert_eq!(engine.preload_used(), 0);
    // Cold-start inference still works.
    let inf = engine.infer(&[9, 1]).unwrap();
    assert!(inf.class < 2);
}
