//! Fleet-scale serving contracts.
//!
//! 1. **Incremental digest ≡ full rehash.** `ServingMix` maintains its
//!    digest as a rolling per-session fold updated O(1) by
//!    `upsert_session`/`remove_session`/`push_session`. A proptest drives
//!    arbitrary interleavings of register / retarget / drop /
//!    backlog-attach and pins the rolling digest equal to a from-scratch
//!    rebuild's — the memo identity behind the SLO-plan cache and both
//!    gate memos never drifts from the full rehash it replaced.
//! 2. **Excluded views are rebuilds.** The server's `exclude` path (a
//!    retargeting session does not co-run with itself) is now a clone +
//!    `remove_session` view; it must predict bit-identically to a mix
//!    rebuilt from scratch without that session.
//! 3. **`gate_all` ≡ `gate`.** The shared full walk prices every SLO
//!    session bit-identically to the per-token early-exit walk it
//!    memoizes for.
//! 4. **Fleet sweep smoke.** `fleet_sweep` opens real fleets against a
//!    real server on the virtual clock and reports a well-formed ledger,
//!    under both executors.
//! 5. **Open/teardown equivalence.** The batch `open_fleet` path and the
//!    sweep's seeded-permutation teardown both leave the sharded registry
//!    bit-identical to from-scratch rebuilds.

use proptest::prelude::*;
use sti::prelude::*;
use sti::TaskContext;

fn importance_for(cfg: &ModelConfig) -> ImportanceProfile {
    ImportanceProfile::from_scores(
        cfg.layers,
        cfg.heads,
        (0..cfg.total_shards()).map(|i| 0.5 + (i % 5) as f64 * 0.01).collect(),
        0.45,
    )
}

fn fixture() -> (HwProfile, ImportanceProfile) {
    let cfg = ModelConfig::tiny();
    let hw = HwProfile::measure(&DeviceProfile::odroid_n2(), &cfg, &QuantConfig::default());
    let importance = importance_for(&cfg);
    (hw, importance)
}

const WIDTHS: [usize; 2] = [2, 4];

/// Deterministic xorshift64 op stream (proptest supplies the seed).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// The test's model of the registry: `(token, plan index, arrival, slo)`
/// in token order, mirrored into the mix under test op-by-op and into a
/// from-scratch rebuild at check time.
type Model = Vec<(u64, usize, SimTime, Option<SimTime>)>;

fn rebuild(
    model: &Model,
    plans: &[ExecutionPlan],
    hw: &HwProfile,
    sharing: IoSharing,
) -> ServingMix {
    let mut mix = ServingMix::new(sharing);
    for &(token, plan, arrival, slo) in model {
        mix.push_session(
            token,
            CoRunnerLoad::from_plan_at(hw, &plans[plan], arrival),
            slo.map(|s| SloProfile::from_plan(hw, &plans[plan], s)),
        );
    }
    mix
}

fn backlog_from(hw: &HwProfile, plan: &ExecutionPlan) -> BacklogSnapshot {
    let jobs: Vec<LayerIoJob> = layer_io_jobs(hw, plan).into_iter().flatten().collect();
    BacklogSnapshot {
        channels: vec![ChannelBacklog {
            channel: 7,
            arrival: SimTime::from_us(40),
            effective_arrival: SimTime::from_us(40),
            inflight: true,
            queued: jobs
                .iter()
                .map(|j| QueuedIo { sig: j.sig, bytes: 64, service: j.service })
                .collect(),
        }],
        batch_window: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary interleavings of register / retarget / drop keep the
    /// rolling digest equal to a from-scratch rebuild's, with and without
    /// an attached backlog, and excluded-session views predict
    /// bit-identically to rebuilds.
    #[test]
    fn incremental_digest_equals_full_rehash(
        seed in 1u64..u64::MAX,
        ops in 4usize..48,
    ) {
        let (hw, imp) = fixture();
        let plans: Vec<ExecutionPlan> = [200u64, 500, 2_000]
            .iter()
            .map(|&ms| {
                plan_two_stage(&hw, &imp, SimTime::from_ms(ms), 0, &WIDTHS, &Bitwidth::ALL)
            })
            .collect();
        let mut rng = Rng(seed);
        let sharing = if rng.next().is_multiple_of(2) {
            IoSharing::Exclusive
        } else {
            IoSharing::Batched(SimTime::from_ms(1))
        };
        let mut mix = ServingMix::new(sharing);
        let mut model: Model = Vec::new();
        let mut next_token = 0u64;
        for _ in 0..ops {
            let plan = (rng.next() % plans.len() as u64) as usize;
            let arrival = SimTime::from_us(rng.next() % 2_000);
            let slo =
                rng.next().is_multiple_of(2).then(|| SimTime::from_ms(100 + rng.next() % 900));
            match rng.next() % 4 {
                // Register a fresh session (tokens are monotone, like the
                // server's).
                0 | 1 => {
                    let token = next_token;
                    next_token += 1;
                    mix.upsert_session(
                        token,
                        CoRunnerLoad::from_plan_at(&hw, &plans[plan], arrival),
                        slo.map(|s| SloProfile::from_plan(&hw, &plans[plan], s)),
                    );
                    model.push((token, plan, arrival, slo));
                }
                // Retarget / re-register an existing session in place.
                2 if !model.is_empty() => {
                    let i = (rng.next() % model.len() as u64) as usize;
                    let token = model[i].0;
                    mix.upsert_session(
                        token,
                        CoRunnerLoad::from_plan_at(&hw, &plans[plan], arrival),
                        slo.map(|s| SloProfile::from_plan(&hw, &plans[plan], s)),
                    );
                    model[i] = (token, plan, arrival, slo);
                }
                // Drop an existing session (or a no-op miss).
                _ => {
                    if model.is_empty() {
                        prop_assert!(!mix.remove_session(99_999));
                    } else {
                        let i = (rng.next() % model.len() as u64) as usize;
                        let token = model.remove(i).0;
                        prop_assert!(mix.remove_session(token));
                    }
                }
            }
            let fresh = rebuild(&model, &plans, &hw, sharing);
            prop_assert_eq!(mix.digest(), fresh.digest(), "rolling digest drifted at op");
        }
        // Backlog attach: `digest_with` is the no-clone view of attaching.
        let backlog = backlog_from(&hw, &plans[2]);
        let fresh = rebuild(&model, &plans, &hw, sharing);
        prop_assert_eq!(
            mix.digest_with(&backlog),
            fresh.clone().with_backlog(backlog.clone()).digest(),
            "digest_with must equal attach-then-digest"
        );
        prop_assert_eq!(mix.clone().with_backlog(backlog.clone()).digest(), {
            let m = mix.clone();
            m.digest_with(&backlog)
        });
        // Excluded views ≡ rebuilds without the session, bit for bit.
        let probe = EngagementLoad::from_plan(&hw, &plans[0], SimTime::ZERO);
        for &(token, ..) in &model {
            let mut view = mix.clone();
            prop_assert!(view.remove_session(token));
            let without: Model =
                model.iter().copied().filter(|&(t, ..)| t != token).collect();
            let scratch = rebuild(&without, &plans, &hw, sharing);
            prop_assert_eq!(view.digest(), scratch.digest());
            prop_assert_eq!(
                view.predict(&probe),
                scratch.predict(&probe),
                "excluded view must predict bit-identically to a rebuild"
            );
        }
    }
}

#[test]
fn gate_all_matches_per_token_gate() {
    let (hw, imp) = fixture();
    let fast = plan_two_stage(&hw, &imp, SimTime::from_ms(200), 0, &WIDTHS, &Bitwidth::ALL);
    let slow = plan_two_stage(&hw, &imp, SimTime::from_ms(2_000), 0, &WIDTHS, &Bitwidth::ALL);
    for sharing in [IoSharing::Exclusive, IoSharing::Batched(SimTime::from_ms(1))] {
        let mut mix = ServingMix::new(sharing);
        for t in 0..10u64 {
            let plan = if t % 2 == 0 { &fast } else { &slow };
            // Mixed population: equal arrivals (tie-broken by token),
            // stragglers, plain co-residents with no SLO.
            let arrival = SimTime::from_us((t / 3) * 300);
            let slo = (t % 3 != 2)
                .then(|| SloProfile::from_plan(&hw, plan, SimTime::from_ms(150 + t * 40)));
            mix.push_session(t, CoRunnerLoad::from_plan_at(&hw, plan, arrival), slo);
        }
        let backlog = backlog_from(&hw, &slow);
        let mix = mix.with_backlog(backlog);
        for policy in [GatePolicy::Shed, GatePolicy::Queue(SimTime::from_ms(100))] {
            let all = mix.gate_all(policy);
            assert_eq!(all.len(), 7, "every SLO session is priced, plain ones are not");
            for &(token, outcome) in &all {
                assert_eq!(
                    mix.gate(token, policy),
                    Some(outcome),
                    "shared walk diverged from the early-exit walk for {token}"
                );
            }
        }
    }
}

#[test]
fn fleet_sweep_reports_a_well_formed_ledger() {
    let ctx = TaskContext::with_config(TaskKind::Sst2, ModelConfig::tiny());
    let cfg = ServeConfig {
        preload_bytes: 0,
        backpressure: BackpressureMode::Queue(SimTime::from_ms(100)),
        ..Default::default()
    };
    for exec in [ExecMode::Threaded, ExecMode::Event] {
        let fleet =
            FleetConfig { sizes: vec![8, 32], slo_sessions: 2, decisions: 24, exec, channels: 1 };
        let points = fleet_sweep(&ctx, &cfg, &fleet).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].sessions, 10);
        assert_eq!(points[1].sessions, 34);
        for p in &points {
            assert_eq!(p.gate_decisions, 24);
            assert!(p.decisions_per_sec > 0.0);
            assert!(p.gate_cold > std::time::Duration::ZERO);
            assert_eq!(p.exec, exec);
            assert!(p.engagements_per_sec > 0.0, "the replay phase served engagements");
            match exec {
                ExecMode::Event => assert!(p.heap_ops > 0, "event points count heap traffic"),
                ExecMode::Threaded => assert_eq!(p.heap_ops, 0),
            }
        }
        let json = fleet_report_json(&points);
        assert!(json.contains("\"bench\": \"serving_fleet\""), "{json}");
        assert!(json.contains("\"sessions\": 34"), "{json}");
        assert!(json.contains("\"gate_mean_us\""), "{json}");
        assert!(json.contains(&format!("\"exec_mode\": \"{}\"", exec.label())), "{json}");
        assert!(json.contains("\"channels\": 1"), "{json}");
        assert!(json.contains("\"engagements_per_sec\""), "{json}");
        assert!(json.contains("\"heap_ops\""), "{json}");
    }
}

/// Seeded-permutation teardown ≡ from-scratch rebuild. Opening a mixed
/// plain/SLO fleet at varying arrivals, then dropping a permuted subset
/// (the order the fleet sweep's teardown phase uses: every shard of the
/// registry sees interleaved removals), must leave the sharded registry's
/// rolling digest bit-identical to a single `ServingMix` rebuilt from the
/// survivors alone.
#[test]
fn seeded_teardown_keeps_the_sharded_digest_equal_to_a_rebuild() {
    let ctx = TaskContext::with_config(TaskKind::Sst2, ModelConfig::tiny());
    let cfg = ServeConfig {
        preload_bytes: 0,
        backpressure: BackpressureMode::Queue(SimTime::from_ms(100)),
        ..Default::default()
    };
    let server = build_server(&ctx, &cfg);
    let hw = HwProfile::measure(&cfg.device, ctx.task().model().config(), ctx.quant());
    let mut sessions = Vec::new();
    for i in 0..24u64 {
        let mut s = if i % 3 == 0 {
            server.session_with_slo(SimTime::from_ms(60_000), 0).unwrap()
        } else {
            server.session_with(cfg.target, 0).unwrap()
        };
        s.set_arrival(SimTime::from_us(i * 137));
        sessions.push(Some(s));
    }
    // Seeded Fisher–Yates permutation; drop the first half in that order.
    let mut order: Vec<usize> = (0..sessions.len()).collect();
    let mut rng = Rng(0xfeed_5eed);
    for i in (1..order.len()).rev() {
        order.swap(i, (rng.next() % (i as u64 + 1)) as usize);
    }
    for &i in order.iter().take(sessions.len() / 2) {
        sessions[i] = None;
    }
    // Rebuild a single mix from the survivors, from scratch.
    let mut survivors: Vec<_> = sessions.iter().flatten().collect();
    survivors.sort_by_key(|s| s.token());
    let mut mix = ServingMix::new(IoSharing::Exclusive);
    for s in survivors {
        mix.push_session(
            s.token(),
            CoRunnerLoad::from_plan_at(&hw, s.plan(), s.arrival()),
            s.slo().map(|slo| SloProfile::from_plan(&hw, s.plan(), slo)),
        );
    }
    assert_eq!(
        server.mix_digest(),
        mix.digest_with(&BacklogSnapshot::default()),
        "sharded registry digest drifted from a from-scratch rebuild after teardown"
    );
}

/// Batch open ≡ one-by-one open. `open_fleet` resolves the knobs once and
/// registers every session against the sharded registry; the resulting
/// digest (and the per-session plans) must be bit-identical to the same
/// fleet opened through `session_with` — the commutative fold makes the
/// two orders indistinguishable.
#[test]
fn open_fleet_is_equivalent_to_one_by_one_opens() {
    let ctx = TaskContext::with_config(TaskKind::Sst2, ModelConfig::tiny());
    let cfg = ServeConfig {
        preload_bytes: 0,
        backpressure: BackpressureMode::Queue(SimTime::from_ms(100)),
        ..Default::default()
    };
    let batch_server = build_server(&ctx, &cfg);
    let batch = batch_server.open_fleet(12, cfg.target, 0).unwrap();
    let one_server = build_server(&ctx, &cfg);
    let ones: Vec<_> = (0..12).map(|_| one_server.session_with(cfg.target, 0).unwrap()).collect();
    assert_eq!(batch.len(), ones.len());
    assert_eq!(batch_server.open_sessions(), one_server.open_sessions());
    assert_eq!(batch_server.mix_digest(), one_server.mix_digest());
    for (b, o) in batch.iter().zip(&ones) {
        assert_eq!(b.token(), o.token());
        assert_eq!(b.plan().predicted.makespan, o.plan().predicted.makespan);
    }
    // Dropping the batch drains the registry exactly like one-by-one drops.
    drop(batch);
    assert_eq!(batch_server.open_sessions(), 0);
    drop(ones);
    assert_eq!(batch_server.mix_digest(), one_server.mix_digest());
}

#[test]
fn repeat_gate_decisions_are_stable_and_pure() {
    let ctx = TaskContext::with_config(TaskKind::Sst2, ModelConfig::tiny());
    let cfg = ServeConfig {
        preload_bytes: 0,
        backpressure: BackpressureMode::Queue(SimTime::from_ms(100)),
        ..Default::default()
    };
    let server = build_server(&ctx, &cfg);
    let _fleet: Vec<_> = (0..16).map(|_| server.session_with(cfg.target, 0).unwrap()).collect();
    let slo = SimTime::from_ms(60_000);
    let a = server.session_with_slo(slo, 0).unwrap();
    let b = server.session_with_slo(slo, 0).unwrap();
    // One session pays for the walk; the other's first decision is a memo
    // lookup off the same walk — and both are stable across repeats.
    let first_a = a.gate_decision().unwrap();
    let first_b = b.gate_decision().unwrap();
    for _ in 0..3 {
        assert_eq!(a.gate_decision().unwrap(), first_a);
        assert_eq!(b.gate_decision().unwrap(), first_b);
    }
    // The probe is pure: no gate log entries, no queue state.
    assert_eq!(server.contention_report().gate.len(), 0);
}
