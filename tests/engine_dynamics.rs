//! Engine behaviour under runtime condition changes: DVFS levels, throttled
//! (wall-clock) execution, and back-to-back engagement caching — the §3.3 /
//! §5.2 dynamics beyond a single plan-and-run.

use std::sync::Arc;

use sti::prelude::*;
use sti_planner::ImportanceProfile;

fn fixture() -> (Task, DeviceProfile, ImportanceProfile, Arc<MemStore>) {
    let cfg = ModelConfig::tiny();
    let task = Task::build(TaskKind::Sst2, cfg.clone(), 4, 6);
    let device = DeviceProfile::odroid_n2();
    let importance = ImportanceProfile::from_scores(
        cfg.layers,
        cfg.heads,
        (0..cfg.total_shards()).map(|i| 0.5 + (i % 6) as f64 * 0.015).collect(),
        0.44,
    );
    let store = Arc::new(MemStore::build(task.model(), &Bitwidth::ALL, &QuantConfig::default()));
    (task, device, importance, store)
}

#[test]
fn dvfs_throttling_shrinks_the_planned_submodel() {
    // The paper profiles T_comp(l, m, freq); a lower operating frequency
    // means less compute fits the target, so the submodel must shrink. Use
    // the full 12x12 grid so shape granularity is fine enough to observe.
    let cfg = ModelConfig::scaled_bert();
    let mut device = DeviceProfile::odroid_n2();
    let importance = ImportanceProfile::from_scores(
        cfg.layers,
        cfg.heads,
        (0..cfg.total_shards()).map(|i| 0.5 + (i % 11) as f64 * 0.01).collect(),
        0.45,
    );
    let hw_peak = HwProfile::measure(&device, &cfg, &QuantConfig::default());
    device.freq = 0.5;
    let hw_half = HwProfile::measure(&device, &cfg, &QuantConfig::default());

    assert!(hw_half.t_comp(cfg.heads) > hw_peak.t_comp(cfg.heads));
    let plan = |hw: &HwProfile| {
        plan_two_stage(
            hw,
            &importance,
            SimTime::from_ms(200),
            4 << 10,
            &DYNABERT_WIDTHS,
            &Bitwidth::ALL,
        )
    };
    let peak = plan(&hw_peak);
    let half = plan(&hw_half);
    assert!(
        half.shape.shard_count() < peak.shape.shard_count(),
        "half frequency must shrink the submodel: {} vs {}",
        half.shape,
        peak.shape
    );
}

#[test]
fn throttled_execution_takes_real_wall_time() {
    // throttle = 1.0 maps simulated IO onto wall-clock sleeps; an execution
    // whose simulated IO is tens of ms must take visibly longer than an
    // unthrottled one.
    let (task, device, importance, store) = fixture();
    let cfg = task.model().config().clone();
    let hw = HwProfile::measure(&device, &cfg, &QuantConfig::default());
    let build = |throttle: f64| {
        StiEngine::builder(
            task.model().clone(),
            store.clone(),
            hw.clone(),
            device.flash,
            importance.clone(),
        )
        .target(SimTime::from_ms(250))
        .preload_budget(0)
        .widths(&[2, 4])
        .throttle(throttle)
        .build()
        .unwrap()
    };
    let fast = build(0.0).infer(&[1, 2]).unwrap();
    let slow = build(1.0).infer(&[1, 2]).unwrap();
    // Identical results, different wall time.
    assert_eq!(fast.outcome.logits, slow.outcome.logits);
    assert_eq!(fast.outcome.timeline, slow.outcome.timeline);
    let simulated_io: SimTime =
        fast.outcome.timeline.layers.iter().map(|l| l.io_end.saturating_sub(l.io_start)).sum();
    assert!(simulated_io > SimTime::from_ms(10), "fixture should have real IO to throttle");
    assert!(
        slow.outcome.wall > fast.outcome.wall + std::time::Duration::from_millis(5),
        "throttled run ({:?}) should be visibly slower than unthrottled ({:?})",
        slow.outcome.wall,
        fast.outcome.wall
    );
}

#[test]
fn back_to_back_engagement_reuses_cached_shards() {
    // §3.3: enlarging the buffer between turns caches loaded shards; the
    // next execution streams strictly fewer bytes.
    let (task, device, importance, store) = fixture();
    let cfg = task.model().config().clone();
    let hw = HwProfile::measure(&device, &cfg, &QuantConfig::default());
    let mut engine = StiEngine::builder(task.model().clone(), store, hw, device.flash, importance)
        .target(SimTime::from_ms(250))
        .preload_budget(2 << 10)
        .widths(&[2, 4])
        .build()
        .unwrap();

    let turn1 = engine.infer(&[3, 4]).unwrap();
    engine.set_preload_budget(48 << 10).unwrap();
    let turn2 = engine.infer(&[5, 6]).unwrap();
    assert!(
        turn2.outcome.loaded_bytes < turn1.outcome.loaded_bytes,
        "cached shards must reduce streaming: {} vs {}",
        turn2.outcome.loaded_bytes,
        turn1.outcome.loaded_bytes
    );
    // The enlarged buffer is actually used.
    assert!(engine.preload_used() > 2 << 10);
}

#[test]
fn concurrent_inference_is_safe_and_deterministic() {
    // `infer(&self)` is designed for concurrent use: two threads sharing an
    // engine must produce the same results as sequential runs.
    let (task, device, importance, store) = fixture();
    let cfg = task.model().config().clone();
    let hw = HwProfile::measure(&device, &cfg, &QuantConfig::default());
    let engine = std::sync::Arc::new(
        StiEngine::builder(task.model().clone(), store, hw, device.flash, importance)
            .target(SimTime::from_ms(250))
            .preload_budget(4 << 10)
            .widths(&[2, 4])
            .build()
            .unwrap(),
    );
    let expected = engine.infer(&[8, 8]).unwrap().outcome.logits;
    let mut handles = Vec::new();
    for _ in 0..4 {
        let e = engine.clone();
        handles.push(std::thread::spawn(move || e.infer(&[8, 8]).unwrap().outcome.logits));
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), expected);
    }
}
