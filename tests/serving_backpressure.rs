//! Contracts of infer-time backpressure: the per-engagement SLO gate over
//! the live flash queue.
//!
//! Admission (PR 2/3) decides once, at session open; these tests pin the
//! mid-session story:
//!
//! 1. **The acceptance economics.** On a bursty workload (ten co-arriving
//!    engagements, eight of them a heavy burst admission never saw —
//!    featherweight sessions that retargeted heavy after the SLO client
//!    admitted), `BackpressureMode::Shed` yields a strictly higher SLO
//!    hit-rate among *served* engagements than `Off`, and `Queue` serves
//!    everything while meeting SLOs that `Off` misses.
//! 2. **Determinism.** Gate decisions are a pure function of the
//!    open-session registry: concurrent and sequential replays of the same
//!    trace produce identical decision logs, outcomes, and shed sets.
//! 3. **Properties.** Shed never fires for an engagement whose session's
//!    open-time admission prediction held; queue-delayed engagements still
//!    meet their SLO on the measured contended track.
//!
//! The uncontended determinism contract (`tests/serving_runtime.rs`) and
//! the batching economics (`tests/serving_batching.rs`) are untouched.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use sti::prelude::*;
use sti::TaskContext;

fn importance_for(cfg: &ModelConfig) -> ImportanceProfile {
    ImportanceProfile::from_scores(
        cfg.layers,
        cfg.heads,
        (0..cfg.total_shards()).map(|i| 0.5 + (i % 5) as f64 * 0.01).collect(),
        0.45,
    )
}

fn server(backpressure: BackpressureMode) -> StiServer {
    let cfg = ModelConfig::tiny();
    let task = Task::build(TaskKind::Sst2, cfg.clone(), 4, 4);
    let dev = DeviceProfile::odroid_n2();
    let hw = HwProfile::measure(&dev, &cfg, &QuantConfig::default());
    let source = Arc::new(MemStore::build(task.model(), &Bitwidth::ALL, &QuantConfig::default()));
    StiServer::builder(task.model().clone(), source, hw, dev.flash, importance_for(&cfg))
        .preload_budget(0)
        .widths(&[2, 4])
        .backpressure(backpressure)
        .build()
}

/// The bursty fixture the acceptance criteria run on. Returns
/// `(slo_hit_rate among served, served SLO engagements, report)` for one
/// backpressure mode.
///
/// Shape: one far-future SLO observer (outside every window), a tight-SLO
/// client admitted against a *featherweight* mix, then the mix retargets
/// heavy — eight full-model engagements co-arriving with the tight
/// client's. Admission could not see the burst; only the infer-time gate
/// can. The IO scheduler is quiesced until the whole burst is queued so
/// the round-robin interleave (what blows the SLO under `Off`) is
/// deterministic.
fn run_burst(mode: BackpressureMode) -> (f64, usize, ContentionReport) {
    let srv = server(mode);
    // Full-model makespan on an idle queue: the probe for SLO choices.
    let probe = srv.session_with(SimTime::from_ms(10_000), 0).unwrap();
    let full = probe.plan().predicted.makespan;
    drop(probe);

    // An SLO observer arriving far outside every window: it shares no
    // window, so it meets its (generous) SLO under every mode.
    let mut observer = srv.session_with_slo(SimTime::from_ms(60_000), 0).unwrap();
    observer.set_arrival(SimTime::from_ms(60_000));
    // Eight featherweight sessions: almost no streaming load at admission
    // time.
    let mut burst: Vec<Session> =
        (0..8).map(|_| srv.session_with(SimTime::from_us(1), 0).unwrap()).collect();
    // The tight client admits against the featherweight mix (its SLO has
    // ~20% slack over the full-model makespan, and the feathers cost ~µs).
    let slo = SimTime::from_us(full.as_us() + full.as_us() / 5);
    let tight = srv.session_with_slo(slo, 0).unwrap();
    let tight_plan = tight.serving_plan().expect("SLO session carries its search outcome");
    assert!(tight_plan.meets_slo, "admission against the featherweight mix holds");
    assert_eq!(
        tight.plan().layers.len(),
        2,
        "the tight client streams both layers (an interleave window exists)"
    );
    // THE BURST: the featherweights retarget to the full model. Admission
    // already said yes; from here on only the infer-time gate can react.
    for s in &mut burst {
        s.set_target(SimTime::from_ms(10_000)).unwrap();
    }

    // Quiesce, queue every engagement, release in one burst.
    srv.pause_io();
    let expected_jobs: usize = 2 /* observer */ + 8 * 2 /* burst */
        + if mode == BackpressureMode::Shed { 0 } else { 2 /* tight */ };
    let outcome = std::thread::scope(|s| {
        let observer_h = s.spawn(|| observer.infer(&[5, 6]).map(|_| ()));
        let burst_h: Vec<_> =
            burst.iter().map(|sess| s.spawn(move || sess.infer(&[7, 8]).map(|_| ()))).collect();
        let tight_h = s.spawn(|| tight.infer(&[1, 2, 3]).map(|_| ()));
        let deadline = Instant::now() + Duration::from_secs(30);
        while srv.queued_io_requests() < expected_jobs {
            assert!(Instant::now() < deadline, "burst never finished queuing");
            std::thread::sleep(Duration::from_micros(200));
        }
        srv.resume_io();
        observer_h.join().unwrap().expect("the far-future observer always runs");
        for h in burst_h {
            h.join().unwrap().expect("target sessions are never gated");
        }
        tight_h.join().unwrap()
    });
    match mode {
        BackpressureMode::Shed => assert!(
            matches!(outcome, Err(PipelineError::Backpressure { .. })),
            "shed mode must fail the tight client fast, got {outcome:?}"
        ),
        _ => outcome.expect("off and queue modes execute the tight client"),
    }

    let report = srv.contention_report();
    let served_slo = report.engagements.iter().filter(|e| e.slo.is_some()).count();
    let hit_rate = report.slo_hit_rate().expect("the observer always serves an SLO engagement");
    (hit_rate, served_slo, report)
}

#[test]
fn shed_beats_off_on_hit_rate_and_queue_meets_what_off_misses() {
    let (off_rate, off_served, off_report) = run_burst(BackpressureMode::Off);
    let (shed_rate, shed_served, shed_report) = run_burst(BackpressureMode::Shed);
    let (queue_rate, queue_served, queue_report) =
        run_burst(BackpressureMode::Queue(SimTime::from_ms(60_000)));

    // Off serves everything and the tight client's engagement, interleaved
    // with the heavy burst it admitted before, misses its SLO.
    assert_eq!(off_served, 2);
    assert!(off_rate < 1.0, "the burst must blow the tight SLO under Off, got {off_rate}");
    assert!(off_report.gate.is_empty(), "mode off records no gate decisions");

    // Shed: strictly higher hit-rate among served engagements — the doomed
    // engagement failed fast instead of executing-and-missing.
    assert_eq!(shed_served, 1, "the tight engagement was shed");
    assert_eq!(shed_report.shed_count(), 1);
    assert!(
        shed_rate > off_rate,
        "shed must strictly beat off on hit-rate among served: {shed_rate} vs {off_rate}"
    );
    assert_eq!(shed_rate, 1.0, "every engagement shed mode served met its SLO");

    // Queue serves *everything* — including the SLO that Off missed — by
    // delaying the tight engagement past the burst on the simulated
    // timeline.
    assert_eq!(queue_served, 2);
    assert_eq!(queue_rate, 1.0, "queue mode meets the SLO off misses");
    assert_eq!(queue_report.shed_count(), 0);
    assert_eq!(queue_report.queue_delayed(), 1);
    assert!(queue_report.max_queue_delay() > SimTime::ZERO);
    let tight = queue_report
        .engagements
        .iter()
        .find(|e| e.slo.is_some() && e.slo != Some(SimTime::from_ms(60_000)))
        .expect("the tight engagement ran under queue mode");
    assert_eq!(tight.met_slo(), Some(true));
}

/// Gate decisions on a replayed trace must be identical between concurrent
/// and sequential replays — the determinism contract extended to the gate.
fn assert_replay_gate_determinism(trace_path: &str, backpressure: BackpressureMode) {
    let ctx = TaskContext::with_config(TaskKind::Sst2, ModelConfig::tiny());
    let cfg = ServeConfig {
        target: SimTime::from_ms(300),
        preload_bytes: 0,
        backpressure,
        ..Default::default()
    };
    let trace = load_trace(trace_path).expect("shipped example parses");
    let concurrent = replay_concurrent(&build_server(&ctx, &cfg), &trace).unwrap();
    let sequential = replay_sequential(&build_server(&ctx, &cfg), &trace).unwrap();
    assert_eq!(
        concurrent.contention.gate, sequential.contention.gate,
        "{trace_path}: gate decisions must not depend on host-thread interleaving"
    );
    assert_eq!(
        concurrent.outcomes, sequential.outcomes,
        "{trace_path}: outcomes stay bit-identical"
    );
    assert_eq!(concurrent.rejected_clients, sequential.rejected_clients);
    assert_eq!(
        concurrent.contention.shed_count(),
        sequential.contention.shed_count(),
        "{trace_path}"
    );
}

#[test]
fn gate_decisions_are_identical_between_concurrent_and_sequential_replays() {
    for mode in [BackpressureMode::Shed, BackpressureMode::Queue(SimTime::from_ms(2_000))] {
        assert_replay_gate_determinism("examples/traces/smoke.json", mode);
        assert_replay_gate_determinism("examples/traces/burst.json", mode);
    }
}

#[test]
fn bursty_trace_sheds_under_shed_and_serves_all_under_queue() {
    let ctx = TaskContext::with_config(TaskKind::Sst2, ModelConfig::tiny());
    let trace = load_trace("examples/traces/burst.json").unwrap();
    let run = |backpressure: BackpressureMode| {
        let cfg = ServeConfig { preload_bytes: 0, backpressure, ..Default::default() };
        replay_concurrent(&build_server(&ctx, &cfg), &trace).unwrap()
    };
    let off = run(BackpressureMode::Off);
    let shed = run(BackpressureMode::Shed);
    let queue = run(BackpressureMode::Queue(SimTime::from_ms(5_000)));
    let served = |r: &ServeReport| r.outcomes.iter().map(Vec::len).sum::<usize>();
    assert_eq!(served(&off), trace.total_engagements());
    assert!(shed.contention.shed_count() > 0, "the burst must shed the late SLO clients");
    assert_eq!(served(&shed), trace.total_engagements() - shed.contention.shed_count() as usize);
    assert_eq!(shed.contention.slo_hit_rate(), Some(1.0), "what shed mode served met its SLO");
    // Queue mode keeps everything while still meeting every SLO.
    assert_eq!(served(&queue), trace.total_engagements());
    assert_eq!(queue.contention.shed_count(), 0);
    assert!(queue.contention.queue_delayed() > 0);
    assert_eq!(queue.contention.slo_hit_rate(), Some(1.0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Shed never fires for an engagement whose session's open-time
    /// admission prediction held: the gate prices a subset of what
    /// admission priced (earlier-arriving sessions, minus sheds), so a
    /// session admission cleared cannot be shed by the gate.
    #[test]
    fn shed_never_fires_when_the_admission_prediction_holds(
        slo_multipliers in proptest::collection::vec(1u64..40, 2..6),
    ) {
        let srv = server(BackpressureMode::Shed);
        let floor = srv.session_with(SimTime::from_us(1), 0).unwrap().plan().predicted.makespan;
        let sessions: Vec<(Session, bool)> = slo_multipliers
            .iter()
            .map(|&m| {
                let s = srv.session_with_slo(floor * m, 0).unwrap();
                let admitted = s.serving_plan().unwrap().meets_slo;
                (s, admitted)
            })
            .collect();
        for (session, admission_held) in &sessions {
            let outcome = session.infer(&[1, 2]);
            if *admission_held {
                prop_assert!(
                    !matches!(outcome, Err(PipelineError::Backpressure { .. })),
                    "gate shed a session whose admission prediction held"
                );
            }
        }
    }

    /// Queue-delayed engagements still meet their SLO on the measured
    /// contended track: the delay pushes them past the backlog, so their
    /// service window is clean.
    #[test]
    fn queue_delayed_engagements_meet_their_slo_on_the_measured_track(
        slo_multipliers in proptest::collection::vec(1u64..40, 2..6),
        engagements in 1usize..3,
    ) {
        let srv = server(BackpressureMode::Queue(SimTime::from_ms(600_000)));
        let floor = srv.session_with(SimTime::from_us(1), 0).unwrap().plan().predicted.makespan;
        let sessions: Vec<Session> = slo_multipliers
            .iter()
            .map(|&m| srv.session_with_slo(floor * m, 0).unwrap())
            .collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = sessions
                .iter()
                .map(|session| {
                    s.spawn(move || {
                        for _ in 0..engagements {
                            match session.infer(&[3, 4]) {
                                Ok(_) | Err(PipelineError::Backpressure { .. }) => {}
                                Err(e) => panic!("unexpected failure: {e}"),
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        let report = srv.contention_report();
        // The property covers engagements the gate actually *delayed*:
        // their shifted arrival gives them a clean service window, so the
        // measured track must agree with the gate's prediction. (An
        // undelayed engagement can still be interleaved by co-arriving
        // sessions that opened after it — backpressure reacts, it does not
        // reorder the already-admitted present.)
        let delayed: std::collections::HashSet<u64> = report
            .gate
            .iter()
            .filter(|d| !d.shed && d.delay > SimTime::ZERO)
            .map(|d| d.session)
            .collect();
        prop_assert!(report.engagements.iter().any(|e| e.slo.is_some()));
        for e in &report.engagements {
            if e.slo.is_some() && delayed.contains(&e.session) {
                prop_assert_eq!(
                    e.met_slo(),
                    Some(true),
                    "queue-delayed engagement missed on the measured track: {} vs {:?}",
                    e.contended,
                    e.slo
                );
            }
        }
    }
}
