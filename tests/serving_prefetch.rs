//! Fencing contracts of the Markov next-engagement prefetcher.
//!
//! 1. **Speculation never touches the demand path.** A proptest replays
//!    random traces with `--prefetch markov` and `--prefetch off` and pins
//!    the demand side bit-identical: per-engagement outcomes, contended
//!    rows, gate decisions (modulo the advisory `speculative_bytes`
//!    label, which is zero with prefetch off by construction), admission
//!    rejections, and the serving counters.
//! 2. **Correct predictions pay.** On the shipped recurrent fixture the
//!    staging pool serves real bytes to later demand misses, and with
//!    DRAM-residency accounting the contended p50 is no worse than the
//!    prefetch-off replay while the SLO hit rate never drops.
//! 3. **Determinism.** Two event replays of the recurrent fixture with the
//!    prefetcher on are fully identical — outcomes, the whole contention
//!    report including the speculative pricing block, and the engine's
//!    heap-op count. The threaded executor agrees with the event engine on
//!    the entire demand side.

use std::sync::OnceLock;

use proptest::prelude::*;
use sti::prelude::*;
use sti::TaskContext;

fn ctx() -> &'static TaskContext {
    static CTX: OnceLock<TaskContext> = OnceLock::new();
    CTX.get_or_init(|| TaskContext::with_config(TaskKind::Sst2, ModelConfig::tiny()))
}

/// Zero preload and a tiny main cache: every engagement streams and
/// recurrence cannot hide in main-cache residency — the regime where the
/// staging pool is the only thing that can help (and where speculative
/// pollution would show up immediately if the fence leaked).
fn serve_config(markov: bool, dram: bool, backpressure: BackpressureMode) -> ServeConfig {
    ServeConfig {
        target: SimTime::from_ms(300),
        preload_bytes: 0,
        shard_cache_bytes: 1 << 10,
        dram_residency: dram,
        backpressure,
        prefetch: if markov { PrefetchConfig::markov(64 << 10) } else { PrefetchConfig::default() },
        ..Default::default()
    }
}

/// Gate decisions with the advisory speculative-backlog label cleared —
/// the one field allowed to differ between prefetch-on and prefetch-off
/// runs (it is zero with prefetch off by construction, and the gate walk
/// never reads it).
fn sans_speculative_label(gate: &[GateDecision]) -> Vec<GateDecision> {
    gate.iter()
        .map(|d| {
            let mut d = *d;
            d.reason.speculative_bytes = 0;
            d
        })
        .collect()
}

#[test]
fn recurrent_fixture_prefetch_pays_without_hurting_the_demand_track() {
    let trace = load_trace("examples/traces/recurrent.json").expect("shipped fixture parses");
    let dram = true; // so pool hits re-price on the contended track
    let off_cfg = serve_config(false, dram, BackpressureMode::Off);
    let on_cfg = serve_config(true, dram, BackpressureMode::Off);
    let off = replay_event(&build_server(ctx(), &off_cfg), &trace).unwrap();
    let on = replay_event(&build_server(ctx(), &on_cfg), &trace).unwrap();

    // Speculation actually happened and served later demand misses.
    assert!(off.prefetch.is_none(), "prefetch off reports no prefetch block");
    let report = on.prefetch.as_ref().expect("markov replay carries a prefetch report");
    assert!(report.model.plans > 0, "the recurrent fixture must emit plans");
    assert!(report.jobs > 0, "plans must materialize into speculative jobs");
    assert!(report.pool.hit_bytes > 0, "staged bytes must serve later demand misses");
    assert!(report.pool.hit_rate() > 0.0);
    let spec = on.contention.prefetch.expect("speculation is priced on the contended track");
    assert!(spec.speculated_bytes + spec.pinned_bytes > 0);

    // The fence: uncontended outcomes are bit-identical, and the priced
    // contended track can only improve — staged bytes are DRAM-resident
    // at dispatch, never a new obligation in front of demand.
    assert_eq!(on.outcomes, off.outcomes, "speculation must not move a demand outcome");
    assert_eq!(on.rejected_clients, off.rejected_clients);
    assert!(
        contended_p50_us(&on.contention) < contended_p50_us(&off.contention),
        "staged-then-hit bytes re-price at DRAM speed, so the recurrent \
         fixture's contended p50 must strictly improve: {} >= {}",
        contended_p50_us(&on.contention),
        contended_p50_us(&off.contention)
    );
    assert!(on.contention.slo_hit_rate() >= off.contention.slo_hit_rate());
}

#[test]
fn recurrent_fixture_event_replay_is_deterministic_run_twice() {
    let trace = load_trace("examples/traces/recurrent.json").expect("shipped fixture parses");
    let cfg = serve_config(true, true, BackpressureMode::Off);
    let a = replay_event(&build_server(ctx(), &cfg), &trace).unwrap();
    let b = replay_event(&build_server(ctx(), &cfg), &trace).unwrap();
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.contention, b.contention, "speculative pricing is deterministic too");
    assert_eq!(a.prefetch, b.prefetch);
    assert_eq!(a.heap_ops, b.heap_ops, "the engine schedule itself is reproducible");
}

#[test]
fn recurrent_fixture_event_matches_threaded_on_the_demand_side() {
    let trace = load_trace("examples/traces/recurrent.json").expect("shipped fixture parses");
    // DRAM residency off: contended pricing is independent of *when* the
    // background executor stages bytes, so the two executors must agree on
    // the whole demand side even though their speculative timing differs.
    let cfg = serve_config(true, false, BackpressureMode::Off);
    let event = replay_event(&build_server(ctx(), &cfg), &trace).unwrap();
    let threaded = replay_concurrent(&build_server(ctx(), &cfg), &trace).unwrap();
    assert_eq!(event.outcomes, threaded.outcomes);
    assert_eq!(event.rejected_clients, threaded.rejected_clients);
    // Record order and scheduler lane ids follow execution order —
    // wall-clock on the threaded path, simulated time on the event loop —
    // so compare the per-engagement economics keyed by (session, issue).
    let rows = |r: &ServeReport| {
        let mut rows: Vec<_> = r
            .contention
            .engagements
            .iter()
            .map(|e| (e.session, e.issue, e.uncontended, e.contended, e.initial_queueing, e.slo))
            .collect();
        rows.sort_by_key(|r| (r.0, r.1));
        rows
    };
    assert_eq!(rows(&event), rows(&threaded));
    assert_eq!(
        sans_speculative_label(&event.contention.gate),
        sans_speculative_label(&threaded.contention.gate),
        "gate decisions agree modulo the wall-clock-sampled speculation label"
    );
    assert!(event.prefetch.is_some(), "both executors run the prefetcher");
    assert!(threaded.prefetch.is_some());
}

proptest! {
    /// Random traces, gated and idle-gapped: enabling the prefetcher never
    /// changes anything the demand path reports — outcomes, contended
    /// rows, gate decisions, rejections, counters — only adds the priced
    /// speculation block.
    #[test]
    fn markov_prefetch_is_fenced_off_the_demand_path(
        clients in proptest::collection::vec(
            (0u64..2_500, 1usize..4, any::<bool>(), any::<bool>()),
            1..4,
        ),
        queue_mode in any::<bool>(),
    ) {
        let trace = ServingTrace {
            clients: clients
                .iter()
                .enumerate()
                .map(|(i, &(arrival_us, engagements, slo, idle))| ClientTrace {
                    target: SimTime::from_ms(300),
                    preload_bytes: 0,
                    slo: slo.then(|| SimTime::from_ms(30_000)),
                    arrival: SimTime::from_us(arrival_us),
                    idle: if idle { SimTime::from_ms(5) } else { SimTime::ZERO },
                    engagements: (0..engagements)
                        .map(|e| vec![7 + i as u32, 3 + e as u32])
                        .collect(),
                })
                .collect(),
        };
        let mode = if queue_mode {
            BackpressureMode::Queue(SimTime::from_ms(2_000))
        } else {
            BackpressureMode::Shed
        };
        // DRAM residency off: the contended track prices every byte at
        // flash speed regardless of cache state, so the fenced demand side
        // must be *bit-identical*, not merely no worse.
        let off = replay_event(&build_server(ctx(), &serve_config(false, false, mode)), &trace)
            .unwrap();
        let on = replay_event(&build_server(ctx(), &serve_config(true, false, mode)), &trace)
            .unwrap();
        prop_assert_eq!(&on.outcomes, &off.outcomes);
        prop_assert_eq!(&on.rejected_clients, &off.rejected_clients);
        prop_assert_eq!(&on.contention.engagements, &off.contention.engagements);
        prop_assert_eq!(on.contention.flash_busy, off.contention.flash_busy);
        prop_assert_eq!(on.serving_stats, off.serving_stats);
        // Prefetch off never stamps a speculative label, so the off gate
        // log doubles as its own normalized form.
        prop_assert_eq!(
            sans_speculative_label(&on.contention.gate),
            off.contention.gate.clone()
        );
        prop_assert_eq!(
            on.contention.slo_hit_rate(),
            off.contention.slo_hit_rate(),
            "a wrong prediction may waste bytes but never an SLO"
        );
        prop_assert!(off.prefetch.is_none());
        prop_assert!(on.prefetch.is_some());
    }
}
