//! Contracts of the deterministic observability layer (`sti-obs`).
//!
//! 1. **Run-twice determinism.** Replaying a trace twice produces
//!    byte-identical Chrome-trace exports — event mode on every shipped
//!    fixture, threaded mode on smoke and burst.
//! 2. **Cross-executor determinism.** The deterministic span tracks
//!    (session/flash — `TrackFilter::Deterministic`) export byte-identically
//!    under `--exec threaded` and `--exec event`, because spans are clocked
//!    on *simulated* time and assembled from the server's logs, not from
//!    host scheduling.
//! 3. **Gate spans carry the reason.** With backpressure on, the stream
//!    contains `gate.*` markers whose args name the deciding mix digest,
//!    and the structured [`GateReason`] on each decision prices the load
//!    the prediction actually ran against.
//! 4. **Observability never perturbs results.** A replay with a live ring
//!    sink installed reports the same outcomes and gate decisions as one
//!    without.

use std::sync::OnceLock;

use sti::prelude::*;
use sti::TaskContext;

fn ctx() -> &'static TaskContext {
    static CTX: OnceLock<TaskContext> = OnceLock::new();
    CTX.get_or_init(|| TaskContext::with_config(TaskKind::Sst2, ModelConfig::tiny()))
}

fn serve_config(backpressure: BackpressureMode) -> ServeConfig {
    ServeConfig {
        target: SimTime::from_ms(300),
        preload_bytes: 0,
        backpressure,
        ..Default::default()
    }
}

/// The deterministic-track export of one replay.
fn export(report: &ServeReport) -> String {
    chrome_trace_json(&report.spans, TrackFilter::Deterministic)
}

#[test]
fn event_replays_export_byte_identical_traces_on_every_fixture() {
    for path in
        ["examples/traces/smoke.json", "examples/traces/burst.json", "examples/traces/mix.json"]
    {
        let trace = load_trace(path).expect("shipped example parses");
        let cfg = serve_config(BackpressureMode::Queue(SimTime::from_ms(2_000)));
        let a = replay_event(&build_server(ctx(), &cfg), &trace).unwrap();
        let b = replay_event(&build_server(ctx(), &cfg), &trace).unwrap();
        assert_eq!(export(&a), export(&b), "{path}: event replays must export identically");
        assert!(!a.spans.is_empty(), "{path}: the replay emits spans");
    }
}

#[test]
fn threaded_replays_export_byte_identical_traces() {
    for path in ["examples/traces/smoke.json", "examples/traces/burst.json"] {
        let trace = load_trace(path).expect("shipped example parses");
        let cfg = serve_config(BackpressureMode::Shed);
        let a = replay_concurrent(&build_server(ctx(), &cfg), &trace).unwrap();
        let b = replay_concurrent(&build_server(ctx(), &cfg), &trace).unwrap();
        assert_eq!(export(&a), export(&b), "{path}: threaded replays must export identically");
    }
}

#[test]
fn threaded_and_event_exports_agree_on_the_deterministic_tracks() {
    // Batching off: the two executors' dispatch logs replay to the same
    // canonical flash timeline, so even the flash track matches.
    for path in ["examples/traces/smoke.json", "examples/traces/mix.json"] {
        let trace = load_trace(path).expect("shipped example parses");
        let cfg = serve_config(BackpressureMode::Queue(SimTime::from_ms(2_000)));
        let threaded = replay_concurrent(&build_server(ctx(), &cfg), &trace).unwrap();
        let event = replay_event(&build_server(ctx(), &cfg), &trace).unwrap();
        assert_eq!(
            export(&threaded),
            export(&event),
            "{path}: deterministic tracks must not depend on the executor"
        );
    }
}

#[test]
fn gate_spans_surface_the_deciding_reason() {
    let trace = load_trace("examples/traces/mix.json").expect("shipped example parses");
    let cfg = serve_config(BackpressureMode::Queue(SimTime::from_ms(2_000)));
    let report = replay_event(&build_server(ctx(), &cfg), &trace).unwrap();
    let gate_spans: Vec<&SpanEvent> =
        report.spans.iter().filter(|s| s.name.starts_with("gate.")).collect();
    assert!(!gate_spans.is_empty(), "a gated mix emits gate spans");
    for span in &gate_spans {
        assert_eq!(span.kind, TrackKind::Session);
        let keys: Vec<&str> = span.args.entries().iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, ["digest", "predicted_us", "backlog_bytes", "dominant"]);
    }
    // The structured reason on the decision log matches what the walk saw:
    // the digest is the memo identity, and a session never blames itself.
    for d in &report.contention.gate {
        assert_ne!(d.reason.digest, 0, "decisions carry the deciding mix digest");
        if let Some((token, service)) = d.reason.dominant_lane {
            assert_ne!(token, d.session, "the dominant lane excludes the deciding session");
            assert!(service > SimTime::ZERO);
        }
    }
    // And the export renders them (instants or completes on session tracks).
    let json = export(&report);
    assert!(json.contains("\"gate."), "gate spans reach the Chrome-trace export");
}

#[test]
fn a_live_sink_never_perturbs_simulated_results() {
    let trace = load_trace("examples/traces/mix.json").expect("shipped example parses");
    let cfg = serve_config(BackpressureMode::Queue(SimTime::from_ms(2_000)));
    let bare_server = build_server(ctx(), &cfg);
    let bare = replay_event(&bare_server, &trace).unwrap();
    let traced_server = build_server(ctx(), &cfg);
    traced_server.set_obs_sink(ObsSink::ring(4 << 20));
    let traced = replay_event(&traced_server, &trace).unwrap();
    assert_eq!(bare.outcomes, traced.outcomes, "instruments record, they never decide");
    assert_eq!(bare.contention.gate, traced.contention.gate);
    // The sink adds spans (admission markers on session tracks, engine/host
    // color) but every log-derived span of the bare run is still there.
    assert!(traced.spans.len() > bare.spans.len());
    for span in &bare.spans {
        assert!(traced.spans.contains(span), "traced run dropped a log-derived span: {span:?}");
    }
    assert!(
        traced.spans.iter().any(|s| !s.kind.deterministic()),
        "the live sink contributed engine/host color spans"
    );
    assert!(
        bare.spans.iter().all(|s| s.kind.deterministic()),
        "without a sink only log-derived spans exist"
    );
    // Sink-on exports stay executor-independent too: the added admission
    // markers are a pure function of the (serialized) open sequence.
    let traced_threaded_server = build_server(ctx(), &cfg);
    traced_threaded_server.set_obs_sink(ObsSink::ring(4 << 20));
    let traced_threaded = replay_concurrent(&traced_threaded_server, &trace).unwrap();
    assert_eq!(
        export(&traced),
        export(&traced_threaded),
        "deterministic-track export with a live sink must not depend on the executor"
    );
}

#[test]
fn metrics_snapshot_reconciles_with_the_legacy_stats() {
    let trace = load_trace("examples/traces/mix.json").expect("shipped example parses");
    let cfg = serve_config(BackpressureMode::Queue(SimTime::from_ms(2_000)));
    let report = replay_event(&build_server(ctx(), &cfg), &trace).unwrap();
    let m = &report.metrics;
    assert_eq!(m.counters["serving.engagements"], report.serving_stats.engagements);
    assert_eq!(m.counters["io.requests"], report.io_stats.requests);
    assert_eq!(m.counters["io.bytes"], report.io_stats.bytes);
    assert_eq!(
        m.counters["gate.decisions"] as usize,
        report.contention.gate.len(),
        "every logged decision increments the gate counter"
    );
    assert_eq!(m.counters["engine.heap_ops"], report.heap_ops);
    let hist = &m.histograms["io.service_us"];
    assert_eq!(hist.count(), report.io_stats.requests);
    // The snapshot renders as deterministic JSON.
    let json = m.to_json();
    assert!(json.contains("\"serving.engagements\""));
    assert!(json.contains("\"p99\""));
}
