//! Integration contracts of the concurrent serving runtime.
//!
//! The refactor from `StiEngine` (one app, one engagement at a time) to
//! `StiServer` + `Session` (N concurrent engagements over shared caches and
//! one IO scheduler) is only sound if sharing is invisible to results:
//!
//! 1. a single session through the server reproduces the seed engine
//!    exactly — same class, probabilities, timeline, loaded bytes;
//! 2. N concurrent sessions produce outcomes identical to N sequential
//!    runs (determinism under sharing);
//! 3. the plan cache replans only on knob changes and honours
//!    invalidation;
//! 4. the shard cache stays under its byte budget while serving.

use std::sync::Arc;

use sti::prelude::*;

fn task() -> Task {
    Task::build(TaskKind::Sst2, ModelConfig::tiny(), 4, 6)
}

fn importance_for(cfg: &ModelConfig) -> ImportanceProfile {
    ImportanceProfile::from_scores(
        cfg.layers,
        cfg.heads,
        (0..cfg.total_shards()).map(|i| 0.5 + (i % 5) as f64 * 0.01).collect(),
        0.45,
    )
}

fn engine_and_server(preload_budget: u64) -> (StiEngine, StiServer) {
    let task = task();
    let cfg = task.model().config().clone();
    let dev = DeviceProfile::odroid_n2();
    let hw = HwProfile::measure(&dev, &cfg, &QuantConfig::default());
    let source = Arc::new(MemStore::build(task.model(), &Bitwidth::ALL, &QuantConfig::default()));
    let importance = importance_for(&cfg);

    let engine = StiEngine::builder(
        task.model().clone(),
        source.clone(),
        hw.clone(),
        dev.flash,
        importance.clone(),
    )
    .target(SimTime::from_ms(300))
    .preload_budget(preload_budget)
    .widths(&[2, 4])
    .build()
    .expect("engine builds");

    let server = StiServer::builder(task.model().clone(), source, hw, dev.flash, importance)
        .target(SimTime::from_ms(300))
        .preload_budget(preload_budget)
        .widths(&[2, 4])
        .build();

    (engine, server)
}

#[test]
fn single_session_reproduces_the_engine_exactly() {
    for preload_budget in [0u64, 16 << 10] {
        let (engine, server) = engine_and_server(preload_budget);
        let session = server.session().expect("session opens");
        assert_eq!(session.plan(), engine.plan(), "identical knobs must plan identically");
        assert_eq!(session.preload_used(), engine.preload_used());

        for tokens in [vec![1, 2, 3], vec![9], vec![4, 4, 4, 4]] {
            let via_engine = engine.infer(&tokens).expect("engine inference");
            let via_session = session.infer(&tokens).expect("session inference");
            assert_eq!(via_session.class, via_engine.class);
            assert_eq!(via_session.probabilities, via_engine.probabilities);
            assert_eq!(via_session.outcome.logits, via_engine.outcome.logits);
            assert_eq!(via_session.outcome.timeline, via_engine.outcome.timeline);
            assert_eq!(via_session.outcome.loaded_bytes, via_engine.outcome.loaded_bytes);
        }

        // The generative path agrees too.
        let g_engine = engine.generate(&[1, 2], 4).expect("engine generates");
        let g_session = session.generate(&[1, 2], 4).expect("session generates");
        assert_eq!(g_session.tokens, g_engine.tokens);
        assert_eq!(g_session.first_step, g_engine.first_step);
        assert_eq!(g_session.per_step, g_engine.per_step);
        assert_eq!(g_session.loaded_bytes, g_engine.loaded_bytes);
    }
}

#[test]
fn eight_concurrent_sessions_match_sequential_execution() {
    let ctx = TaskContext::with_config(TaskKind::Sst2, ModelConfig::tiny());
    let cfg = ServeConfig {
        target: SimTime::from_ms(300),
        // Zero preload maximizes streaming through the shared scheduler —
        // the hardest case for determinism under sharing.
        preload_bytes: 0,
        io_workers: 2,
        ..Default::default()
    };
    let trace = ServingTrace::synthetic(&ctx, &cfg, 8, 3);
    assert_eq!(trace.total_engagements(), 24);

    let concurrent = replay_concurrent(&build_server(&ctx, &cfg), &trace).expect("concurrent");
    let sequential = replay_sequential(&build_server(&ctx, &cfg), &trace).expect("sequential");
    assert_eq!(
        concurrent.outcomes, sequential.outcomes,
        "per-engagement outcomes must be identical under concurrency"
    );

    // And both match N fresh single-engine runs.
    let source = ctx.shard_source();
    let hw = HwProfile::measure(&cfg.device, ctx.task().model().config(), ctx.quant());
    for (client, outcomes) in trace.clients.iter().zip(&concurrent.outcomes) {
        let engine = StiEngine::builder(
            ctx.task().model().clone(),
            source.clone(),
            hw.clone(),
            cfg.device.flash,
            ctx.importance().clone(),
        )
        .target(client.target)
        .preload_budget(client.preload_bytes)
        .build()
        .expect("engine builds");
        for (tokens, outcome) in client.engagements.iter().zip(outcomes) {
            let inf = engine.infer(tokens).expect("engine inference");
            assert_eq!(outcome.class, inf.class);
            assert_eq!(outcome.probabilities, inf.probabilities);
            assert_eq!(outcome.makespan, inf.outcome.timeline.makespan);
            assert_eq!(outcome.loaded_bytes, inf.outcome.loaded_bytes);
        }
    }
}

#[test]
fn plan_cache_hits_misses_and_invalidates_across_sessions() {
    let (_, server) = engine_and_server(16 << 10);

    let a = server.session().expect("first session");
    let b = server.session().expect("second session");
    let stats = server.plan_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1), "same knobs: one plan, one hit");
    assert_eq!(a.plan(), b.plan());

    let mut c = server.session().expect("third session");
    c.set_target(SimTime::from_ms(1_500)).expect("retarget");
    let stats = server.plan_stats();
    assert_eq!(stats.misses, 2, "new target is a genuine miss");

    c.set_target(SimTime::from_ms(300)).expect("retarget back");
    assert_eq!(server.plan_stats().misses, 2, "returning to known knobs hits");

    server.invalidate_plans();
    let _d = server.session().expect("post-invalidation session");
    let stats = server.plan_stats();
    assert_eq!(stats.misses, 3, "invalidation forces a replan");
}

#[test]
fn shard_cache_serves_under_budget() {
    let task = task();
    let cfg = task.model().config().clone();
    let dev = DeviceProfile::odroid_n2();
    let hw = HwProfile::measure(&dev, &cfg, &QuantConfig::default());
    let source = Arc::new(MemStore::build(task.model(), &Bitwidth::ALL, &QuantConfig::default()));
    // A budget of roughly two compressed shards: far too small for the
    // whole submodel, so serving must continuously evict.
    let probe = source
        .load(ShardKey::new(ShardId::new(0, 0), Bitwidth::B2))
        .expect("probe blob")
        .byte_size() as u64;
    let budget = probe * 2;
    let server =
        StiServer::builder(task.model().clone(), source, hw, dev.flash, importance_for(&cfg))
            .target(SimTime::from_ms(300))
            .preload_budget(0)
            .widths(&[2, 4])
            // Single fidelity so every streamed blob is admissible under the
            // tiny budget and eviction pressure is guaranteed.
            .bitwidths(&[Bitwidth::B2])
            .shard_cache_bytes(budget)
            .build();

    let session = server.session().expect("session opens");
    let baseline = session.infer(&[5, 6]).expect("first engagement");
    for _ in 0..3 {
        let again = session.infer(&[5, 6]).expect("repeat engagement");
        assert_eq!(again.probabilities, baseline.probabilities);
        assert_eq!(again.outcome.loaded_bytes, baseline.outcome.loaded_bytes);
    }
    let stats = server.shard_stats();
    assert!(stats.evictions > 0, "a tiny budget must evict while serving");
}
