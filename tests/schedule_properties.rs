//! Property-based invariants of the pipeline schedule model — the arithmetic
//! every latency number in the reproduction rests on.

use proptest::prelude::*;
use sti_device::SimTime;
use sti_planner::schedule::{sequential_makespan, simulate_pipeline, LayerTiming};

fn timings_strategy() -> impl Strategy<Value = Vec<LayerTiming>> {
    proptest::collection::vec((0u64..500, 1u64..500), 1..16).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(io, comp)| LayerTiming {
                io: SimTime::from_ms(io),
                comp: SimTime::from_ms(comp),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The pipeline can never beat either resource's serial bound, and can
    /// never lose to fully sequential execution.
    #[test]
    fn makespan_is_bounded_by_resource_bounds(timings in timings_strategy()) {
        let p = simulate_pipeline(&timings, SimTime::ZERO);
        let total_io: SimTime = timings.iter().map(|t| t.io).sum();
        let total_comp: SimTime = timings.iter().map(|t| t.comp).sum();
        prop_assert!(p.makespan >= total_io.max(total_comp).max(timings[0].io + timings[0].comp));
        prop_assert!(p.makespan <= sequential_makespan(&timings));
    }

    /// Stall accounting identity: the compute channel is either busy or
    /// stalled, so makespan = total compute + total stall.
    #[test]
    fn makespan_decomposes_into_compute_plus_stall(timings in timings_strategy()) {
        let p = simulate_pipeline(&timings, SimTime::ZERO);
        let total_comp: SimTime = timings.iter().map(|t| t.comp).sum();
        prop_assert_eq!(p.makespan, total_comp + p.total_stall);
    }

    /// Per-layer schedules are causally ordered: IO ends before compute
    /// starts, layers never overlap on either channel.
    #[test]
    fn schedules_are_causally_ordered(timings in timings_strategy()) {
        let p = simulate_pipeline(&timings, SimTime::ZERO);
        for (k, l) in p.layers.iter().enumerate() {
            prop_assert!(l.io_start <= l.io_end);
            prop_assert!(l.io_end <= l.comp_start, "layer {k} computes before its IO lands");
            prop_assert!(l.comp_start <= l.comp_end);
            if k > 0 {
                prop_assert!(p.layers[k - 1].io_end <= l.io_start, "IO channel overlap at {k}");
                prop_assert!(
                    p.layers[k - 1].comp_end <= l.comp_start,
                    "compute channel overlap at {k}"
                );
            }
        }
    }

    /// Growing any single IO or compute duration never shrinks the makespan.
    #[test]
    fn makespan_is_monotone(
        timings in timings_strategy(),
        which in any::<prop::sample::Index>(),
        extra_ms in 1u64..200,
        io_side in any::<bool>(),
    ) {
        let base = simulate_pipeline(&timings, SimTime::ZERO).makespan;
        let mut grown = timings.clone();
        let idx = which.index(grown.len());
        if io_side {
            grown[idx].io += SimTime::from_ms(extra_ms);
        } else {
            grown[idx].comp += SimTime::from_ms(extra_ms);
        }
        let new = simulate_pipeline(&grown, SimTime::ZERO).makespan;
        prop_assert!(new >= base);
    }

    /// Removing all IO yields the compute-only lower bound exactly — the
    /// PreloadModel baseline's timeline.
    #[test]
    fn zero_io_hits_compute_bound(timings in timings_strategy()) {
        let no_io: Vec<LayerTiming> = timings
            .iter()
            .map(|t| LayerTiming { io: SimTime::ZERO, comp: t.comp })
            .collect();
        let p = simulate_pipeline(&no_io, SimTime::ZERO);
        let total_comp: SimTime = timings.iter().map(|t| t.comp).sum();
        prop_assert_eq!(p.makespan, total_comp);
        prop_assert_eq!(p.total_stall, SimTime::ZERO);
    }
}
