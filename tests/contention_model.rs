//! Contracts of the contended-time track: the flash-queue simulator, the
//! SLO-aware serving planner, and admission control.
//!
//! The acceptance anchor: a workload where admission control **rejects** an
//! engagement the queue simulator predicts would miss its SLO, while every
//! **admitted** engagement's contended latency meets its own. The
//! uncontended determinism contract (`tests/serving_runtime.rs`) is
//! untouched — these tests only exercise the new track.

use std::sync::Arc;

use sti::prelude::*;

fn importance_for(cfg: &ModelConfig) -> ImportanceProfile {
    ImportanceProfile::from_scores(
        cfg.layers,
        cfg.heads,
        (0..cfg.total_shards()).map(|i| 0.5 + (i % 5) as f64 * 0.01).collect(),
        0.45,
    )
}

fn server(admission: AdmissionMode) -> StiServer {
    let cfg = ModelConfig::tiny();
    let task = Task::build(TaskKind::Sst2, cfg.clone(), 4, 6);
    let dev = DeviceProfile::odroid_n2();
    let hw = HwProfile::measure(&dev, &cfg, &QuantConfig::default());
    let source = Arc::new(MemStore::build(task.model(), &Bitwidth::ALL, &QuantConfig::default()));
    StiServer::builder(task.model().clone(), source, hw, dev.flash, importance_for(&cfg))
        .target(SimTime::from_ms(300))
        .preload_budget(0)
        .widths(&[2, 4])
        .admission(admission)
        .build()
}

/// The smallest achievable uncontended makespan on this server: what a
/// 1 µs target degrades to. An SLO at this level is satisfiable alone and
/// unsatisfiable under any co-runner.
fn floor_makespan(srv: &StiServer) -> SimTime {
    srv.session_with(SimTime::from_us(1), 0).expect("floor session").plan().predicted.makespan
}

#[test]
fn admission_rejects_predicted_slo_misses_and_admitted_engagements_meet_theirs() {
    let srv = server(AdmissionMode::Enforce);
    let generous = SimTime::from_ms(60_000);

    // Three well-behaved clients admit under a generous SLO...
    let admitted: Vec<Session> = (0..3)
        .map(|i| srv.session_with_slo(generous, 0).unwrap_or_else(|e| panic!("{i}: {e}")))
        .collect();
    // ...and the queue simulator's prediction for each meets its SLO.
    for s in &admitted {
        let served = s.serving_plan().expect("SLO sessions carry the search outcome");
        assert!(served.meets_slo);
        assert!(served.predicted_contended <= generous);
    }

    // A fourth client asks for the floor latency — achievable alone, but
    // the simulator predicts three co-runners push it past the SLO, and
    // admission control rejects the engagement.
    let tight = floor_makespan(&srv);
    match srv.session_with_slo(tight, 0) {
        Err(PipelineError::AdmissionRejected { predicted, slo, co_runners }) => {
            assert_eq!(co_runners, 3);
            assert_eq!(slo, tight);
            assert!(predicted > slo, "rejection must quote a predicted miss: {predicted} <= {slo}");
        }
        Ok(_) => panic!("the floor SLO must be rejected with 3 co-runners"),
        Err(other) => panic!("wrong error: {other}"),
    }
    let stats = srv.serving_stats();
    assert_eq!((stats.admitted_sessions, stats.rejected_sessions), (3, 1));

    // Run the admitted engagements; the measured contended track agrees:
    // every admitted engagement's contended latency meets its SLO.
    for s in &admitted {
        s.infer(&[1, 2, 3]).expect("admitted engagement executes");
    }
    let report = srv.contention_report();
    assert_eq!(report.engagements.len(), 3);
    for e in &report.engagements {
        assert_eq!(e.met_slo(), Some(true), "contended {} vs SLO {:?}", e.contended, e.slo);
        assert!(e.contended >= e.uncontended);
    }
    assert_eq!(report.slo_hit_rate(), Some(1.0));
}

#[test]
fn the_same_workload_admits_once_the_channel_frees_up() {
    let srv = server(AdmissionMode::Enforce);
    let tight = floor_makespan(&srv);
    // With no co-runners the floor SLO is exactly achievable.
    let alone = srv.session_with_slo(tight, 0).expect("floor SLO admits on an idle server");
    let served = alone.serving_plan().unwrap();
    assert!(served.meets_slo);
    assert_eq!(served.predicted_contended, tight, "alone, contended == uncontended == floor");
}

#[test]
fn full_replay_rejects_the_infeasible_client_and_serves_the_rest() {
    let ctx = TaskContext::with_config(TaskKind::Sst2, ModelConfig::tiny());
    let mut cfg = ServeConfig {
        target: SimTime::from_ms(300),
        preload_bytes: 0,
        admission: AdmissionMode::Enforce,
        ..Default::default()
    };
    let floor = floor_makespan(&build_server(&ctx, &cfg));
    cfg.slo = Some(SimTime::from_ms(60_000));
    let mut trace = ServingTrace::synthetic(&ctx, &cfg, 4, 2);
    trace.clients[3].slo = Some(floor); // the aggressive client opens last

    let server = build_server(&ctx, &cfg);
    let report = replay_concurrent(&server, &trace).unwrap();
    assert_eq!(report.rejected_clients, vec![3]);
    assert!(report.outcomes[3].is_empty());
    for outcomes in &report.outcomes[..3] {
        assert_eq!(outcomes.len(), 2, "admitted clients serve all engagements");
    }
    assert_eq!(report.contention.slo_hit_rate(), Some(1.0), "admitted engagements meet their SLOs");

    // And the deterministic track still matches a sequential replay.
    let sequential = replay_sequential(&build_server(&ctx, &cfg), &trace).unwrap();
    assert_eq!(report.outcomes, sequential.outcomes);
    assert_eq!(sequential.rejected_clients, vec![3]);
}

#[test]
fn predicted_contention_is_exact_alone_and_monotone_in_co_runners() {
    let cfg = ModelConfig::tiny();
    let hw = HwProfile::measure(&DeviceProfile::odroid_n2(), &cfg, &QuantConfig::default());
    let importance = importance_for(&cfg);
    for (t, s) in [(300u64, 0u64), (300, 16 << 10), (1_000, 0)] {
        let plan =
            plan_two_stage(&hw, &importance, SimTime::from_ms(t), s, &[2, 4], &Bitwidth::ALL);
        assert_eq!(
            predict_contended_latency(&hw, &plan, 0),
            plan.predicted.makespan,
            "T={t} |S|={s}"
        );
        let mut last = SimTime::ZERO;
        for co in [0usize, 1, 2, 4, 8] {
            let predicted = predict_contended_latency(&hw, &plan, co);
            assert!(predicted >= last, "contended latency must not shrink as co-runners grow");
            last = predicted;
        }
    }
}

#[test]
fn trace_file_round_trips_through_both_replay_modes() {
    let ctx = TaskContext::with_config(TaskKind::Sst2, ModelConfig::tiny());
    let cfg = ServeConfig {
        target: SimTime::from_ms(300),
        preload_bytes: 0,
        admission: AdmissionMode::Enforce,
        ..Default::default()
    };
    let trace = load_trace("examples/traces/smoke.json").expect("shipped example parses");
    let concurrent = replay_concurrent(&build_server(&ctx, &cfg), &trace).unwrap();
    let sequential = replay_sequential(&build_server(&ctx, &cfg), &trace).unwrap();
    assert_eq!(concurrent.outcomes, sequential.outcomes, "trace replay is deterministic");
    assert_eq!(concurrent.rejected_clients, sequential.rejected_clients);
    let served: usize = concurrent.outcomes.iter().map(Vec::len).sum();
    assert!(served > 0, "the example trace must serve work");
}
