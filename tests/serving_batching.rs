//! Contracts of the shared-IO batching subsystem.
//!
//! Batching coalesces co-resident sessions' identical layer loads into one
//! fan-out flash job. Three things must hold:
//!
//! 1. **Determinism untouched.** Per-engagement results under batching are
//!    bit-identical to sequential (and to batching-off) replays — batching
//!    buys contended latency and flash bytes only.
//! 2. **The acceptance economics.** Eight identical-knob sessions arriving
//!    inside one window turn an 8× flash tax into 1×: the contention
//!    report shows flash-bytes-saved of exactly 7/8 of the unbatched byte
//!    total, and the batched contended p50 sits strictly below the
//!    unbatched one.
//! 3. **Queue invariants survive** (property tests): batched contended
//!    flash bytes never exceed unbatched, every fan-out recipient receives
//!    a bit-identical layer, and per-engagement FIFO is preserved.
//!
//! Determinism of the fan-outs themselves is arranged with the scheduler's
//! quiesce support (`pause_io`/`resume_io`): the whole co-resident workload
//! queues first, then releases in one burst.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use sti::prelude::*;
use sti::TaskContext;

fn batched_cfg(window: Option<SimTime>) -> ServeConfig {
    ServeConfig {
        target: SimTime::from_ms(300),
        // Zero preload maximizes streaming through the shared scheduler —
        // the case batching exists for.
        preload_bytes: 0,
        io_workers: 2,
        batch_window: window,
        ..Default::default()
    }
}

#[test]
fn batched_concurrent_replay_is_bit_identical_to_sequential_and_unbatched() {
    let ctx = TaskContext::with_config(TaskKind::Sst2, ModelConfig::tiny());
    let window = Some(SimTime::from_ms(1));
    let trace = ServingTrace::synthetic(&ctx, &batched_cfg(window), 8, 3);

    let batched = replay_concurrent(&build_server(&ctx, &batched_cfg(window)), &trace).unwrap();
    let sequential = replay_sequential(&build_server(&ctx, &batched_cfg(window)), &trace).unwrap();
    let unbatched = replay_concurrent(&build_server(&ctx, &batched_cfg(None)), &trace).unwrap();

    assert_eq!(
        batched.outcomes, sequential.outcomes,
        "batched concurrent execution must reproduce the sequential replay exactly"
    );
    assert_eq!(
        batched.outcomes, unbatched.outcomes,
        "batching must be invisible to the uncontended track"
    );
    assert_eq!(unbatched.contention.flash_bytes_saved, 0);
    assert_eq!(unbatched.contention.batched_dispatches, 0);
}

/// Runs `sessions` identical-knob sessions, one engagement each, with the
/// IO scheduler quiesced until the whole workload is queued — so every
/// dispatch sees all co-resident requests and fan-outs are deterministic.
fn run_quiesced(server: &StiServer, sessions: usize, tokens: &[u32]) -> ContentionReport {
    let opened: Vec<Session> =
        (0..sessions).map(|_| server.session().expect("session opens")).collect();
    let layers = opened[0].plan().layers.len();
    server.pause_io();
    let outcomes: Vec<Inference> = std::thread::scope(|s| {
        let handles: Vec<_> =
            opened.iter().map(|session| s.spawn(move || session.infer(tokens).unwrap())).collect();
        // Every engagement submits its full layer sequence up front; wait
        // until all of them are queued before releasing the flash.
        let deadline = Instant::now() + Duration::from_secs(30);
        while server.queued_io_requests() < sessions * layers {
            assert!(Instant::now() < deadline, "workload never finished queuing");
            std::thread::sleep(Duration::from_micros(200));
        }
        server.resume_io();
        handles.into_iter().map(|h| h.join().expect("engagement thread")).collect()
    });
    // Sanity: identical sessions produce identical (deterministic) results.
    for outcome in &outcomes[1..] {
        assert_eq!(outcome.probabilities, outcomes[0].probabilities);
        assert_eq!(outcome.outcome.loaded_bytes, outcomes[0].outcome.loaded_bytes);
    }
    server.contention_report()
}

#[test]
fn eight_in_window_sessions_save_seven_eighths_of_flash_bytes_and_shrink_p50() {
    let ctx = TaskContext::with_config(TaskKind::Sst2, ModelConfig::tiny());
    let tokens = [1u32, 2, 3];

    let batched_server = build_server(&ctx, &batched_cfg(Some(SimTime::from_ms(1))));
    let batched = run_quiesced(&batched_server, 8, &tokens);
    let unbatched_server = build_server(&ctx, &batched_cfg(None));
    let unbatched = run_quiesced(&unbatched_server, 8, &tokens);

    // Flash economics: the unbatched byte total is what the 8 engagements
    // would have read alone; batching coalesces every dispatch 8-ways, so
    // exactly 7/8 of it is never re-read.
    let unbatched_bytes = batched_server.io_stats().bytes;
    assert_eq!(unbatched_bytes, unbatched_server.io_stats().bytes, "same per-engagement traffic");
    assert!(unbatched_bytes > 0);
    assert_eq!(
        batched.flash_bytes_saved,
        unbatched_bytes / 8 * 7,
        "8 co-resident sessions must share every read: saved = 7/8 of unbatched bytes"
    );
    assert_eq!(unbatched.flash_bytes_saved, 0);
    assert!((batched.mean_batch_occupancy - 8.0).abs() < 1e-9, "every dispatch is 8-way");

    // Latency economics: the contended replay charges each shared job once,
    // so the batched p50 must sit strictly below the unbatched one.
    assert_eq!(batched.engagements.len(), 8);
    assert_eq!(unbatched.engagements.len(), 8);
    let batched_p50 = batched.latency_percentile(0.5);
    let unbatched_p50 = unbatched.latency_percentile(0.5);
    assert!(
        batched_p50 < unbatched_p50,
        "batched contended p50 {batched_p50} must be strictly below unbatched {unbatched_p50}"
    );
    // The flash itself did an eighth of the work.
    assert_eq!(batched.flash_busy * 8, unbatched.flash_busy, "shared jobs are served once");
    assert_eq!(unbatched.flash_busy, unbatched_server.io_stats().sim_flash_busy);
}

/// Scheduler-level fixture for the property tests: a tiny model's store
/// and a flash model, shared across both policies.
fn store_fixture() -> (Arc<MemStore>, FlashModel) {
    let model = Model::synthetic(2, ModelConfig::tiny());
    let store =
        Arc::new(MemStore::build(&model, &[Bitwidth::B2, Bitwidth::B6], &QuantConfig::default()));
    (store, FlashModel::new(1_000_000, SimTime::from_ms(1)))
}

/// Replays `workload` (per-channel request lists plus arrival offsets)
/// under `policy` with dispatch quiesced until everything is queued, and
/// returns each channel's received layers plus the event log.
fn replay_workload(
    store: Arc<MemStore>,
    flash: FlashModel,
    policy: BatchPolicy,
    workload: &[(SimTime, Vec<LayerRequest>)],
) -> (Vec<Vec<LoadedLayer>>, Vec<FlashDispatchEvent>) {
    let sched = IoScheduler::spawn_batched(store, flash, 1, 0.0, None, policy);
    sched.pause_dispatch();
    let channels: Vec<IoChannel> =
        workload.iter().map(|(arrival, _)| sched.channel_at(*arrival)).collect();
    for ((_, requests), channel) in workload.iter().zip(&channels) {
        for request in requests {
            channel.request(request.clone()).unwrap();
        }
    }
    sched.resume_dispatch();
    let received = workload
        .iter()
        .zip(&channels)
        .map(|((_, requests), channel)| requests.iter().map(|_| channel.recv().unwrap()).collect())
        .collect();
    let events = sched.flash_events();
    sched.shutdown();
    (received, events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random co-resident workloads (4 channels, arrivals straddling the
    /// window, arbitrary layer/slice/bitwidth mixes): batching never
    /// charges the contended track more flash bytes than no batching,
    /// every recipient's layer is bit-identical to its unbatched twin, and
    /// per-channel FIFO delivery is preserved.
    #[test]
    fn batched_replay_saves_bytes_and_preserves_fifo_and_payloads(
        samples in proptest::collection::vec((0u64..4, 0u16..2, 0u16..2, 0usize..2), 4..40),
    ) {
        let window = SimTime::from_us(300);
        let bitwidths = [Bitwidth::B2, Bitwidth::B6];
        // Deterministic arrivals: channels 0/1 inside one window, 2 far
        // away, 3 borderline.
        let arrivals =
            [SimTime::ZERO, SimTime::from_us(250), SimTime::from_ms(50), SimTime::from_us(300)];
        let mut workload: Vec<(SimTime, Vec<LayerRequest>)> =
            arrivals.iter().map(|&a| (a, Vec::new())).collect();
        for &(channel, layer, slice, bw) in &samples {
            workload[channel as usize]
                .1
                .push(LayerRequest { layer, items: vec![(slice, bitwidths[bw])] });
        }

        let (store, flash) = store_fixture();
        let (unbatched_layers, unbatched_events) =
            replay_workload(store.clone(), flash, BatchPolicy::Off, &workload);
        let (batched_layers, batched_events) =
            replay_workload(store, flash, BatchPolicy::Window(window), &workload);

        // Contended flash bytes (each event charged once) can only shrink.
        let charged = |events: &[FlashDispatchEvent]| -> u64 {
            events.iter().map(|e| e.bytes).sum()
        };
        prop_assert!(charged(&batched_events) <= charged(&unbatched_events));
        // ...and what shrank is exactly the ledgered fan-out savings.
        let saved: u64 = batched_events.iter().map(|e| e.bytes * e.members.len() as u64).sum();
        prop_assert_eq!(charged(&batched_events) + saved, charged(&unbatched_events));

        // Per-channel FIFO and bit-identical fan-out payloads: each
        // channel's receive sequence matches its submission order and its
        // unbatched twin exactly.
        for (channel, ((_, requests), (batched, unbatched))) in workload
            .iter()
            .zip(batched_layers.iter().zip(&unbatched_layers))
            .enumerate()
        {
            prop_assert_eq!(batched.len(), requests.len());
            for (slot, ((request, b), u)) in
                requests.iter().zip(batched).zip(unbatched).enumerate()
            {
                prop_assert_eq!(b.layer, request.layer, "channel {} slot {}", channel, slot);
                prop_assert_eq!(b.layer, u.layer);
                prop_assert_eq!(b.bytes, u.bytes);
                prop_assert_eq!(b.io_delay, u.io_delay);
                prop_assert_eq!(b.blobs.len(), u.blobs.len());
                for ((bs, bb), (us, ub)) in b.blobs.iter().zip(&u.blobs) {
                    prop_assert_eq!(bs, us);
                    prop_assert_eq!(&**bb, &**ub, "fan-out payloads must be bit-identical");
                }
            }
        }

        // Channel 2 arrived far outside everyone's window: none of its
        // requests may ride a batch, and nobody may ride its.
        let far = 2u64;
        for event in &batched_events {
            if event.fanout() > 1 {
                prop_assert!(event.channel != far && !event.members.contains(&far));
            }
        }
    }
}
