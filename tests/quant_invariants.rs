//! Property-based invariants of the quantization substrate over arbitrary
//! weight distributions (not just the synthetic generator's).

use proptest::prelude::*;
use sti_quant::{Bitwidth, QuantConfig, QuantizedBlob};
use sti_storage::format;
use sti_tensor::stats;

fn weights_strategy() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, 16..600)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantize → dequantize preserves length and yields finite values.
    #[test]
    fn dequantized_weights_are_finite(weights in weights_strategy(), bits in 0usize..5) {
        let bw = Bitwidth::COMPRESSED[bits];
        let blob = QuantizedBlob::quantize(&weights, bw, &QuantConfig::default());
        let restored = blob.dequantize();
        prop_assert_eq!(restored.len(), weights.len());
        prop_assert!(restored.iter().all(|x| x.is_finite()));
    }

    /// Reconstruction error is bounded by the weight range (equal-population
    /// clustering cannot produce centroids outside the data span).
    #[test]
    fn reconstruction_stays_in_data_range(weights in weights_strategy()) {
        let blob = QuantizedBlob::quantize(&weights, Bitwidth::B2, &QuantConfig::default());
        let restored = blob.dequantize();
        let lo = weights.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = weights.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        for x in restored {
            prop_assert!(x >= lo - 1e-4 && x <= hi + 1e-4, "{x} outside [{lo}, {hi}]");
        }
    }

    /// Higher bitwidths never reconstruct worse (MSE is non-increasing in k).
    #[test]
    fn error_is_monotone_in_bitwidth(weights in weights_strategy()) {
        let cfg = QuantConfig::default();
        let mut prev = f32::INFINITY;
        for bw in Bitwidth::ALL {
            let blob = QuantizedBlob::quantize(&weights, bw, &cfg);
            let err = stats::mse(&weights, &blob.dequantize());
            // Tiny tolerance: equal-population boundaries can tie.
            prop_assert!(err <= prev + 1e-6, "mse rose from {prev} to {err} at {bw}");
            prev = err;
        }
        prop_assert_eq!(prev, 0.0);
    }

    /// Serialized records round-trip bit-exactly through the storage format.
    #[test]
    fn storage_record_round_trips(weights in weights_strategy(), bits in 0usize..5) {
        let bw = Bitwidth::COMPRESSED[bits];
        let blob = QuantizedBlob::quantize(&weights, bw, &QuantConfig::default());
        let encoded = format::encode_blob(&blob);
        let (decoded, consumed) = format::decode_blob(&encoded).expect("valid record");
        prop_assert_eq!(consumed, encoded.len());
        prop_assert_eq!(decoded, blob);
    }

    /// Any single corrupted byte in a record is detected.
    #[test]
    fn corruption_is_always_detected(
        weights in proptest::collection::vec(-1.0f32..1.0, 32..128),
        corrupt_at in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let blob = QuantizedBlob::quantize(&weights, Bitwidth::B4, &QuantConfig::default());
        let mut encoded = format::encode_blob(&blob);
        let idx = corrupt_at.index(encoded.len());
        encoded[idx] ^= flip;
        match format::decode_blob(&encoded) {
            Err(_) => {}
            Ok((decoded, _)) => {
                // A flip that decodes must not silently change the payload.
                prop_assert_eq!(decoded, blob, "corruption at byte {} went unnoticed", idx);
            }
        }
    }
}
