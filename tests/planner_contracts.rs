//! Property-based contracts of the planner: over random device profiles,
//! targets, and budgets, the invariants of §5 must hold.

use proptest::prelude::*;
use sti::prelude::*;
use sti_device::ComputeModel;
use sti_planner::compute_plan::DYNABERT_WIDTHS;
use sti_tensor::Rng;

fn hw_for(bandwidth_kbps: u64, per_shard_ms: u64, fixed_us: u64) -> HwProfile {
    let device = DeviceProfile {
        flash: FlashModel::new(bandwidth_kbps * 1000, SimTime::from_ms(2)),
        compute: ComputeModel {
            fixed_layer: SimTime::from_us(fixed_us),
            per_shard: SimTime::from_ms(per_shard_ms),
            reference_seq: 12,
            decompress_per_shard: SimTime::from_us(500),
        },
        ..DeviceProfile::odroid_n2()
    };
    HwProfile::measure(&device, &ModelConfig::scaled_bert(), &QuantConfig::default())
}

fn importance_from_seed(seed: u64) -> ImportanceProfile {
    let mut rng = Rng::new(seed);
    ImportanceProfile::from_scores(
        12,
        12,
        (0..144).map(|_| 0.4 + 0.4 * rng.next_f32() as f64).collect(),
        0.38,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The planned submodel's computation alone always fits the target (or
    /// the plan is the degraded minimum).
    #[test]
    fn compute_always_fits_target(
        bandwidth in 100u64..2000,
        per_shard in 1u64..20,
        target_ms in 60u64..1000,
        seed in any::<u64>(),
    ) {
        let hw = hw_for(bandwidth, per_shard, 500);
        let importance = importance_from_seed(seed);
        let plan = plan_two_stage(
            &hw,
            &importance,
            SimTime::from_ms(target_ms),
            16 << 10,
            &DYNABERT_WIDTHS,
            &Bitwidth::ALL,
        );
        let compute: SimTime = (0..plan.shape.depth)
            .map(|_| hw.t_comp(plan.shape.width))
            .sum();
        prop_assert!(
            compute <= SimTime::from_ms(target_ms) || plan.shape.shard_count() <= 3,
            "compute {compute} exceeds target {target_ms}ms for {}",
            plan.shape
        );
    }

    /// Plans that satisfied their AIBs meet the deadline, and their total
    /// pipeline stall never exceeds the budget the planner granted itself
    /// (preload bonus + compute-planning slack). Stalls beyond that budget
    /// would mean the AIB ledger under-accounted some IO.
    #[test]
    fn satisfied_plans_meet_deadline_with_bounded_stall(
        bandwidth in 200u64..2000,
        target_ms in 100u64..800,
        preload_kb in 0u64..64,
        seed in any::<u64>(),
    ) {
        let hw = hw_for(bandwidth, 8, 500);
        let importance = importance_from_seed(seed);
        let target = SimTime::from_ms(target_ms);
        let plan = plan_two_stage(
            &hw,
            &importance,
            target,
            preload_kb << 10,
            &DYNABERT_WIDTHS,
            &Bitwidth::ALL,
        );
        if plan.aib_satisfied {
            prop_assert!(
                plan.predicted.makespan <= target,
                "makespan {} exceeds target {target_ms}ms for {}",
                plan.predicted.makespan,
                plan.shape
            );
            let compute: SimTime =
                (0..plan.shape.depth).map(|_| hw.t_comp(plan.shape.width)).sum();
            let slack = target.saturating_sub(compute);
            let bonus = hw.transfer_delay(preload_kb << 10);
            prop_assert!(
                plan.predicted.total_stall <= slack + bonus,
                "stall {} exceeds granted budget {} for {}",
                plan.predicted.total_stall,
                slack + bonus,
                plan.shape
            );
        }
    }

    /// The plan's structure is always internally consistent.
    #[test]
    fn plan_structure_is_consistent(
        target_ms in 60u64..1000,
        preload_kb in 0u64..128,
        seed in any::<u64>(),
    ) {
        let hw = hw_for(510, 8, 500);
        let importance = importance_from_seed(seed);
        let plan = plan_two_stage(
            &hw,
            &importance,
            SimTime::from_ms(target_ms),
            preload_kb << 10,
            &DYNABERT_WIDTHS,
            &Bitwidth::ALL,
        );
        prop_assert_eq!(plan.layers.len(), plan.shape.depth);
        for (l, pl) in plan.layers.iter().enumerate() {
            prop_assert_eq!(pl.layer as usize, l);
            prop_assert_eq!(pl.slices.len(), plan.shape.width);
            prop_assert_eq!(pl.bitwidths.len(), plan.shape.width);
            let mut sorted = pl.slices.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(&sorted, &pl.slices, "slices must be sorted and unique");
        }
        // Preload is a prefix in layer order and fits the budget.
        let preload_bytes: u64 =
            plan.preload.iter().map(|&(_, bw)| hw.shard_bytes(bw)).sum();
        prop_assert!(preload_bytes <= preload_kb << 10);
        for (id, bw) in &plan.preload {
            prop_assert_eq!(plan.bitwidth_of(*id), Some(*bw));
        }
    }

    /// More preload memory never shrinks the submodel and never lowers any
    /// shard's planned fidelity sum.
    #[test]
    fn preload_memory_is_monotone(
        target_ms in 100u64..600,
        seed in any::<u64>(),
    ) {
        let hw = hw_for(510, 8, 500);
        let importance = importance_from_seed(seed);
        let plan_at = |kb: u64| plan_two_stage(
            &hw,
            &importance,
            SimTime::from_ms(target_ms),
            kb << 10,
            &DYNABERT_WIDTHS,
            &Bitwidth::ALL,
        );
        let small = plan_at(0);
        let large = plan_at(64);
        prop_assert!(large.shape.shard_count() >= small.shape.shard_count());
        if large.shape == small.shape && small.aib_satisfied {
            let bits = |p: &ExecutionPlan| -> u64 {
                p.layers.iter().flat_map(|l| l.bitwidths.iter()).map(|b| b.bits() as u64).sum()
            };
            prop_assert!(bits(&large) >= bits(&small));
        }
    }
}
