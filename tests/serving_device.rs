//! Contracts of the multi-channel device topology (`sti-device`'s
//! `DeviceTopology`/`TopologyQueueSim`) and its serving-path integration:
//!
//! 1. **Queue-model invariants per device channel** (proptests): busy-time
//!    conservation channel by channel, FIFO service order within a
//!    channel, each channel's server never overlaps two jobs, and no job
//!    ever migrates to a channel it was not submitted to.
//! 2. **`C = 1` ≡ legacy.** A single-channel topology run is bit-identical
//!    to `FlashQueueSim` on arbitrary job streams, and a `channels: 1`
//!    server reproduces the default server's outcomes, gate decisions,
//!    and contended latencies on every shipped fixture under both
//!    executors.
//! 3. **Placement wins admissions.** Striping a fleet across `C = 4`
//!    channels admits an SLO session that the single-channel device
//!    rejects at the same SLO — the planner's placement axis turns
//!    channel parallelism into admission headroom.
//! 4. **Per-device-channel observability.** A `C = 4` replay exports
//!    byte-identically run to run on the deterministic tracks and mints
//!    the `io.channel.<c>.*` instruments.

use proptest::prelude::*;
use sti::prelude::*;
use sti::TaskContext;

const CHANNELS: u16 = 4;

/// Builds `(device_channel, job)` pairs from sampled tuples. Arrivals are
/// prefix sums per engagement in submission order — the FIFO contract the
/// IO scheduler's dispatch log guarantees by construction.
fn build_routed_jobs(samples: &[(u16, u64, u64, u64)]) -> Vec<(u16, FlashJob)> {
    let mut clock = std::collections::HashMap::new();
    samples
        .iter()
        .map(|&(channel, engagement, gap_us, service_us)| {
            let engagement = engagement % 5;
            let at = clock.entry(engagement).or_insert(SimTime::ZERO);
            *at += SimTime::from_us(gap_us);
            (
                channel % CHANNELS,
                FlashJob { engagement, arrival: *at, service: SimTime::from_us(service_us) },
            )
        })
        .collect()
}

fn run_topology(routed: &[(u16, FlashJob)]) -> TopologyReport {
    let mut sim = TopologyQueueSim::new(DeviceTopology::with_channels(CHANNELS));
    for &(channel, job) in routed {
        sim.submit_on(channel, job);
    }
    sim.run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn busy_time_is_conserved_per_device_channel(
        samples in proptest::collection::vec(
            (0u16..CHANNELS, 0u64..5, 0u64..20_000, 1u64..10_000),
            1..60,
        ),
    ) {
        let routed = build_routed_jobs(&samples);
        let report = run_topology(&routed);
        prop_assert_eq!(report.channels.len(), CHANNELS as usize);
        // Channel by channel: busy time is exactly the sum of the service
        // times submitted to that channel — work never leaks across lanes.
        for c in 0..CHANNELS {
            let submitted: SimTime = routed
                .iter()
                .filter(|(ch, _)| *ch == c)
                .map(|(_, j)| j.service)
                .sum();
            prop_assert_eq!(report.channels[c as usize].busy, submitted, "channel {}", c);
            // A single channel server can never finish before its work.
            prop_assert!(report.channels[c as usize].makespan >= report.channels[c as usize].busy);
        }
        let total: SimTime = routed.iter().map(|(_, j)| j.service).sum();
        prop_assert_eq!(report.busy(), total);
        prop_assert_eq!(report.completions().len(), routed.len());
    }

    #[test]
    fn fifo_within_a_channel_and_jobs_never_migrate(
        samples in proptest::collection::vec(
            (0u16..CHANNELS, 0u64..5, 0u64..20_000, 1u64..10_000),
            1..60,
        ),
    ) {
        let routed = build_routed_jobs(&samples);
        let report = run_topology(&routed);
        for c in 0..CHANNELS as usize {
            // Each channel's server works one job at a time, in FIFO order
            // of (arrival, submission seq) — never overlapping two jobs.
            for pair in report.channels[c].completions.windows(2) {
                prop_assert!(pair[0].completion <= pair[1].start, "channel {} overlapped", c);
                prop_assert!(
                    (pair[0].arrival, pair[0].seq) <= (pair[1].arrival, pair[1].seq),
                    "channel {} broke FIFO",
                    c
                );
            }
            // No cross-channel service: a channel completes exactly the
            // global submission seqs routed to it, nothing else.
            let mut submitted: Vec<usize> = routed
                .iter()
                .enumerate()
                .filter(|(_, (ch, _))| *ch as usize == c)
                .map(|(seq, _)| seq)
                .collect();
            submitted.sort_unstable();
            let mut served: Vec<usize> =
                report.channels[c].completions.iter().map(|j| j.seq).collect();
            served.sort_unstable();
            prop_assert_eq!(served, submitted, "channel {} served foreign jobs", c);
        }
    }

    /// `C = 1` ≡ legacy, at the simulator level: a single-channel topology
    /// (hosted on the shared event engine) reproduces `FlashQueueSim`
    /// bitwise on arbitrary job streams.
    #[test]
    fn single_channel_topology_is_bitwise_the_legacy_sim(
        samples in proptest::collection::vec(
            (0u16..CHANNELS, 0u64..5, 0u64..20_000, 1u64..10_000),
            1..60,
        ),
    ) {
        let routed = build_routed_jobs(&samples);
        let mut legacy = FlashQueueSim::new();
        let mut topo = TopologyQueueSim::new(DeviceTopology::single());
        for &(_, job) in &routed {
            legacy.submit(job);
            topo.submit_on(0, job);
        }
        let want = legacy.run();
        let got = topo.run();
        prop_assert_eq!(got.single(), &want);
        prop_assert_eq!(got.completions(), want.completions);
        prop_assert_eq!((got.busy(), got.makespan(), got.max_depth()),
                        (want.busy, want.makespan, want.max_depth));
    }
}

fn ctx() -> TaskContext {
    TaskContext::with_config(TaskKind::Sst2, ModelConfig::tiny())
}

/// `C = 1` ≡ legacy, at the server level: on every shipped fixture, under
/// both executors, an explicit `channels: 1` server is bit-identical to
/// the default (pre-knob) server — per-engagement outcomes, gate
/// decisions, and contended latencies alike.
#[test]
fn explicit_single_channel_matches_the_default_device_on_shipped_fixtures() {
    let ctx = ctx();
    for path in
        ["examples/traces/smoke.json", "examples/traces/burst.json", "examples/traces/mix.json"]
    {
        let trace = load_trace(path).expect("shipped example parses");
        let legacy = ServeConfig {
            target: SimTime::from_ms(300),
            preload_bytes: 0,
            backpressure: BackpressureMode::Queue(SimTime::from_ms(2_000)),
            ..Default::default()
        };
        let pinned = ServeConfig { channels: 1, ..legacy.clone() };
        for exec in [ExecMode::Threaded, ExecMode::Event] {
            let replay = |cfg: &ServeConfig| match exec {
                ExecMode::Threaded => replay_concurrent(&build_server(&ctx, cfg), &trace),
                ExecMode::Event => replay_event(&build_server(&ctx, cfg), &trace),
            };
            let want = replay(&legacy).unwrap();
            let got = replay(&pinned).unwrap();
            assert_eq!(got.outcomes, want.outcomes, "{path} {exec:?}");
            assert_eq!(got.contention.gate, want.contention.gate, "{path} {exec:?}");
            assert_eq!(got.rejected_clients, want.rejected_clients, "{path} {exec:?}");
            if exec == ExecMode::Event {
                // The event executor is run-to-run deterministic down to
                // the contended rows, so the C=1 pin is exact there; a
                // threaded replay's queueing depends on the host schedule
                // (two runs of the *same* config differ), so only the
                // determinism-contract fields are comparable above.
                assert_eq!(
                    got.contention.engagements, want.contention.engagements,
                    "{path} {exec:?}"
                );
                assert_eq!(got.contention, want.contention, "{path} {exec:?}");
            }
        }
    }
}

/// Whether a `channels`-wide server admits one SLO session against a
/// six-strong plain fleet at `slo`.
fn admits(ctx: &TaskContext, channels: u16, slo: SimTime) -> bool {
    let cfg = ServeConfig {
        target: SimTime::from_ms(300),
        preload_bytes: 0,
        admission: AdmissionMode::Enforce,
        channels,
        ..Default::default()
    };
    let server = build_server(ctx, &cfg);
    let fleet = server.open_fleet(6, cfg.target, 0).expect("plain opens are ungated");
    let admitted = server.session_with_slo(slo, 0).is_ok();
    drop(fleet);
    admitted
}

/// The acceptance claim of the placement axis: striping across `C = 4`
/// admits an SLO session that the single-channel device rejects at the
/// *same* SLO. Six identical co-runners serialize on one channel but
/// spread across four, so the planner's striped prediction clears SLOs
/// the single-lane prediction cannot.
#[test]
fn striping_across_four_channels_admits_where_one_channel_rejects() {
    let ctx = ctx();
    let probe = build_server(&ctx, &ServeConfig { preload_bytes: 0, ..Default::default() });
    let floor = probe.session_with(SimTime::from_us(1), 0).unwrap().plan().predicted.makespan;
    drop(probe);
    // Scan SLOs from just above the uncontended floor to far beyond it;
    // somewhere in between, channel parallelism is the difference between
    // admit and reject.
    let mut witness = None;
    for k in 5..=48u64 {
        let slo = SimTime::from_us(floor.as_us() * k / 4);
        let one = admits(&ctx, 1, slo);
        let four = admits(&ctx, 4, slo);
        if four && !one {
            witness = Some(slo);
            break;
        }
    }
    let witness = witness.expect("some SLO admits striped C=4 but rejects C=1");
    // Pin the witness's shape explicitly for the failure message.
    assert!(admits(&ctx, 4, witness) && !admits(&ctx, 1, witness), "witness {witness} regressed");
}

/// Per-device-channel observability: a `C = 4` replay (a) run-twice
/// exports byte-identical Chrome-trace JSON on the deterministic tracks
/// and identical metrics snapshots, and (b) mints the per-channel
/// `io.channel.<c>.*` instruments that a single-channel server omits.
#[test]
fn striped_replay_observability_is_deterministic_and_per_channel() {
    let ctx = ctx();
    let cfg = ServeConfig {
        target: SimTime::from_ms(300),
        preload_bytes: 0,
        backpressure: BackpressureMode::Queue(SimTime::from_ms(2_000)),
        channels: 4,
        ..Default::default()
    };
    let trace = load_trace("examples/traces/mix.json").expect("shipped example parses");
    let a = replay_event(&build_server(&ctx, &cfg), &trace).unwrap();
    let b = replay_event(&build_server(&ctx, &cfg), &trace).unwrap();
    let export = |r: &ServeReport| chrome_trace_json(&r.spans, TrackFilter::Deterministic);
    assert_eq!(export(&a), export(&b), "striped deterministic tracks are byte-identical");
    assert_eq!(a.metrics.to_json(), b.metrics.to_json(), "striped metrics reproduce");
    let metrics = a.metrics.to_json();
    assert!(metrics.contains("io.channel."), "C=4 mints per-channel instruments: {metrics}");
    // The single-channel server keeps its legacy instrument surface.
    let single = ServeConfig { channels: 1, ..cfg };
    let legacy = replay_event(&build_server(&ctx, &single), &trace).unwrap();
    assert!(
        !legacy.metrics.to_json().contains("io.channel."),
        "C=1 keeps the legacy instrument surface"
    );
}
