//! Contracts of the discrete-event serving path (`replay_event`) and the
//! co-arrival gate fixed point.
//!
//! 1. **Event ≡ threaded ≡ sequential.** Replaying the shipped traces on
//!    the discrete-event engine reproduces the threaded path's
//!    per-engagement outcomes, gate decisions, and admission rejections
//!    bit for bit. With batching off the contended aggregates match too;
//!    with a batch window the two executors may *sequence* the contended
//!    rows differently (the event loop enqueues every co-arriving request
//!    before the flash components service the instant), but the contended
//!    aggregates — busy time, makespan, depth, batch economics — are
//!    pinned equal on the mix fixture.
//! 2. **Run-twice determinism.** Two event replays of the same trace are
//!    fully identical — outcomes, the whole contention report, and even
//!    the engine's heap-op count.
//! 3. **Co-arrival fixed point.** For mutually co-arriving SLO sessions in
//!    queue mode, the iterated second gate pass converges on delays that
//!    are consistent with each other: every member's prediction at its
//!    decided delay, priced against its co-arrivals' *decided* (delayed)
//!    positions, meets its SLO — and the early-exit `gate` agrees with the
//!    shared `gate_all` walk.
//! 4. **Random traces.** A proptest drives small generated traces through
//!    the event loop and pins outcome equality against the sequential
//!    replay.

use std::sync::OnceLock;

use proptest::prelude::*;
use sti::prelude::*;
use sti::TaskContext;

fn ctx() -> &'static TaskContext {
    static CTX: OnceLock<TaskContext> = OnceLock::new();
    CTX.get_or_init(|| TaskContext::with_config(TaskKind::Sst2, ModelConfig::tiny()))
}

fn serve_config(
    backpressure: BackpressureMode,
    batch_window: Option<SimTime>,
    plan_sharing: PreloadPolicy,
) -> ServeConfig {
    ServeConfig {
        target: SimTime::from_ms(300),
        preload_bytes: 0,
        backpressure,
        batch_window,
        plan_sharing,
        ..Default::default()
    }
}

/// Replays `trace` through all three executors of one config and pins the
/// cross-mode determinism contract: outcomes, gate decisions, and
/// admission rejections are identical. Returns `(event, threaded)` for
/// aggregate comparisons the caller wants on top.
fn replay_everyway(trace: &ServingTrace, cfg: &ServeConfig) -> (ServeReport, ServeReport) {
    let event = replay_event(&build_server(ctx(), cfg), trace).unwrap();
    let threaded = replay_concurrent(&build_server(ctx(), cfg), trace).unwrap();
    let sequential = replay_sequential(&build_server(ctx(), cfg), trace).unwrap();
    assert_eq!(event.outcomes, threaded.outcomes, "event vs threaded outcomes diverged");
    assert_eq!(event.outcomes, sequential.outcomes, "event vs sequential outcomes diverged");
    assert_eq!(
        event.contention.gate, threaded.contention.gate,
        "event vs threaded gate decisions diverged"
    );
    assert_eq!(event.rejected_clients, threaded.rejected_clients);
    // Peak in-flight engagements is the one schedule-dependent counter:
    // threaded peaks with wall-clock overlap, the event loop with simulated
    // co-arrival. Everything else must match.
    let mut stats = event.serving_stats;
    stats.peak_concurrent_engagements = threaded.serving_stats.peak_concurrent_engagements;
    assert_eq!(stats, threaded.serving_stats);
    assert!(event.heap_ops > 0, "the event loop reports its heap traffic");
    assert_eq!(threaded.heap_ops, 0);
    (event, threaded)
}

#[test]
fn event_replay_matches_threaded_on_smoke_and_burst() {
    for path in ["examples/traces/smoke.json", "examples/traces/burst.json"] {
        let trace = load_trace(path).expect("shipped example parses");
        for mode in [BackpressureMode::Shed, BackpressureMode::Queue(SimTime::from_ms(2_000))] {
            let cfg = serve_config(mode, None, PreloadPolicy::PerSession);
            let (event, threaded) = replay_everyway(&trace, &cfg);
            // Batching off: the contended aggregates are schedule-free and
            // must match the threaded path exactly.
            assert_eq!(event.contention.flash_busy, threaded.contention.flash_busy, "{path}");
            assert_eq!(event.contention.batched_dispatches, 0, "{path}");
            assert_eq!(event.contention.flash_bytes_saved, 0, "{path}");
            assert_eq!(
                event.contention.preload_bytes_reallocated,
                threaded.contention.preload_bytes_reallocated,
                "{path}"
            );
        }
    }
}

#[test]
fn event_replay_matches_threaded_on_the_batched_mix_trace() {
    let trace = load_trace("examples/traces/mix.json").expect("shipped example parses");
    let cfg = serve_config(
        BackpressureMode::Queue(SimTime::from_ms(2_000)),
        Some(SimTime::from_us(500)),
        PreloadPolicy::SharingAware,
    );
    // Outcomes/gate/rejections are pinned by `replay_everyway`. The guard
    // on top: under batching, the contended *aggregates* — the numbers
    // planning and reports consume — are identical across executors even
    // though the two paths may sequence the per-engagement rows
    // differently. (Both replay the same recorded dispatch log through
    // the same topology simulation; only row order is schedule-shaped.)
    let (event, threaded) = replay_everyway(&trace, &cfg);
    assert_eq!(event.contention.flash_busy, threaded.contention.flash_busy);
    assert_eq!(event.contention.queue_makespan, threaded.contention.queue_makespan);
    assert_eq!(event.contention.max_queue_depth, threaded.contention.max_queue_depth);
    assert_eq!(event.contention.batched_dispatches, threaded.contention.batched_dispatches);
    assert_eq!(event.contention.flash_bytes_saved, threaded.contention.flash_bytes_saved);
    assert_eq!(
        event.contention.preload_bytes_reallocated,
        threaded.contention.preload_bytes_reallocated
    );
    // Run-twice determinism: the whole report reproduces, heap ops included.
    let again = replay_event(&build_server(ctx(), &cfg), &trace).unwrap();
    assert_eq!(event.outcomes, again.outcomes);
    assert_eq!(event.contention, again.contention);
    assert_eq!(event.rejected_clients, again.rejected_clients);
    assert_eq!(event.heap_ops, again.heap_ops, "event order is a pure function of the trace");
}

fn importance_for(cfg: &ModelConfig) -> ImportanceProfile {
    ImportanceProfile::from_scores(
        cfg.layers,
        cfg.heads,
        (0..cfg.total_shards()).map(|i| 0.5 + (i % 5) as f64 * 0.01).collect(),
        0.45,
    )
}

const WIDTHS: [usize; 2] = [2, 4];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite pin for the iterated second gate pass: a group of 2–4
    /// mutually co-arriving SLO sessions (plus optional plain co-residents)
    /// in queue mode converges on mutually consistent delays — each
    /// member's prediction at its decided delay, against the others'
    /// decided positions, meets its SLO — and `gate` ≡ `gate_all`.
    #[test]
    fn co_arrival_gate_fixed_point_converges(
        members in 2usize..5,
        plain in 0usize..3,
        arrival_us in 0u64..1_500,
        slo_ms in 2_000u64..20_000,
        target_sel in proptest::collection::vec(0usize..3, 4..5),
    ) {
        let model = ModelConfig::tiny();
        let hw = HwProfile::measure(&DeviceProfile::odroid_n2(), &model, &QuantConfig::default());
        let imp = importance_for(&model);
        let targets = [SimTime::from_ms(200), SimTime::from_ms(500), SimTime::from_ms(2_000)];
        let plans: Vec<ExecutionPlan> = targets
            .iter()
            .map(|&t| plan_two_stage(&hw, &imp, t, 0, &WIDTHS, &Bitwidth::ALL))
            .collect();
        let arrival = SimTime::from_us(arrival_us);
        let slo = SimTime::from_ms(slo_ms);
        let policy = GatePolicy::Queue(SimTime::from_ms(30_000));
        // Tokens 0..members co-arrive with SLOs; plain sessions follow.
        let mut mix = ServingMix::new(IoSharing::Exclusive);
        for m in 0..members {
            let plan = &plans[target_sel[m % target_sel.len()]];
            mix.push_session(
                m as u64,
                CoRunnerLoad::from_plan_at(&hw, plan, arrival),
                Some(SloProfile::from_plan(&hw, plan, slo)),
            );
        }
        for p in 0..plain {
            let plan = &plans[target_sel[(members + p) % target_sel.len()]];
            mix.push_session(
                (members + p) as u64,
                CoRunnerLoad::from_plan_at(&hw, plan, SimTime::from_us(200 * p as u64)),
                None,
            );
        }
        let all = mix.gate_all(policy);
        prop_assert_eq!(all.len(), members, "every SLO member is priced");
        // The early-exit walk agrees with the shared one at the fixed point.
        for &(token, outcome) in &all {
            prop_assert_eq!(mix.gate(token, policy), Some(outcome));
        }
        // Generous SLOs: the group queues, it never sheds — and the decided
        // delays are mutually consistent: re-predicting each member at its
        // decided position, against a mix rebuilt with every co-arrival at
        // *its* decided position, still meets the SLO.
        for &(token, outcome) in &all {
            prop_assert!(!outcome.shed, "member {} shed under a generous SLO", token);
            prop_assert!(outcome.predicted <= slo);
            let plan = &plans[target_sel[token as usize % target_sel.len()]];
            let mut others = ServingMix::new(IoSharing::Exclusive);
            for &(t, oc) in &all {
                if t == token {
                    continue;
                }
                let p = &plans[target_sel[t as usize % target_sel.len()]];
                others.push_session(
                    t,
                    CoRunnerLoad::from_plan_at(&hw, p, arrival + oc.delay),
                    None,
                );
            }
            for p in 0..plain {
                let pp = &plans[target_sel[(members + p) % target_sel.len()]];
                others.push_session(
                    (members + p) as u64,
                    CoRunnerLoad::from_plan_at(&hw, pp, SimTime::from_us(200 * p as u64)),
                    None,
                );
            }
            let load = EngagementLoad::from_plan(&hw, plan, arrival + outcome.delay);
            prop_assert!(
                others.predict(&load) <= slo,
                "member {}'s decided delay is inconsistent with the group's: {} > {}",
                token,
                others.predict(&load),
                slo
            );
        }
    }

    /// Small random traces: the event replay's per-engagement outcomes and
    /// gate decisions match the sequential replay's.
    #[test]
    fn event_replay_matches_sequential_on_random_traces(
        clients in proptest::collection::vec(
            (0u64..2_500, 1usize..3, any::<bool>()),
            1..4,
        ),
        queue_mode in any::<bool>(),
    ) {
        let trace = ServingTrace {
            clients: clients
                .iter()
                .enumerate()
                .map(|(i, &(arrival_us, engagements, slo))| ClientTrace {
                    target: SimTime::from_ms(300),
                    preload_bytes: 0,
                    slo: slo.then(|| SimTime::from_ms(30_000)),
                    arrival: SimTime::from_us(arrival_us),
                    idle: SimTime::ZERO,
                    engagements: (0..engagements)
                        .map(|e| vec![7 + i as u32, 3 + e as u32])
                        .collect(),
                })
                .collect(),
        };
        let mode = if queue_mode {
            BackpressureMode::Queue(SimTime::from_ms(2_000))
        } else {
            BackpressureMode::Shed
        };
        let cfg = serve_config(mode, None, PreloadPolicy::PerSession);
        let event = replay_event(&build_server(ctx(), &cfg), &trace).unwrap();
        let sequential = replay_sequential(&build_server(ctx(), &cfg), &trace).unwrap();
        prop_assert_eq!(event.outcomes, sequential.outcomes);
        prop_assert_eq!(event.contention.gate, sequential.contention.gate);
        prop_assert_eq!(event.rejected_clients, sequential.rejected_clients);
    }
}
